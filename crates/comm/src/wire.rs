//! Compact binary codec with exact wire-size accounting.
//!
//! Messages crossing "the network" are encoded to bytes even though the
//! cluster is in-process: byte counts feed the network/I-O accounting that
//! the paper's Fig 12 reports, and encoding keeps node state genuinely
//! shared-nothing (a message cannot smuggle references).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// A tag byte had no corresponding variant.
    BadTag(u8),
    /// A length prefix exceeded sanity limits.
    BadLength(u64),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadLength(n) => write!(f, "implausible length {n}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum decoded collection length (guards against corrupt prefixes).
const MAX_LEN: u64 = 1 << 32;

/// Writer over a growable byte buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an u8.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends an f64 (IEEE-754 bits, little-endian).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.put_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finalizes into an immutable buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Reader over an immutable byte buffer.
#[derive(Debug)]
pub struct WireReader {
    buf: Bytes,
}

impl WireReader {
    /// Creates a reader over `buf`.
    pub fn new(buf: Bytes) -> Self {
        Self { buf }
    }

    fn need(&self, n: usize) -> Result<(), WireError> {
        if self.buf.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }

    /// Reads an u8.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads an f64.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed byte string (zero-copy slice of the input).
    pub fn get_bytes(&mut self) -> Result<Bytes, WireError> {
        let len = self.get_u64()?;
        if len > MAX_LEN {
            return Err(WireError::BadLength(len));
        }
        self.need(len as usize)?;
        Ok(self.buf.split_to(len as usize))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::Truncated)
    }

    /// Unconsumed bytes.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

/// A type with a binary wire representation.
pub trait Wire: Sized {
    /// Encodes `self` onto the writer.
    fn encode(&self, w: &mut WireWriter);

    /// Decodes a value from the reader.
    fn decode(r: &mut WireReader) -> Result<Self, WireError>;

    /// Encodes into a standalone buffer.
    fn to_bytes(&self) -> Bytes {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.finish()
    }

    /// Decodes from a standalone buffer, requiring full consumption.
    fn from_bytes(buf: Bytes) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::Truncated);
        }
        Ok(v)
    }

    /// Exact encoded size in bytes.
    fn wire_size(&self) -> usize {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.len()
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        r.get_u64()
    }
}

impl Wire for f64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_f64(*self);
    }
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        r.get_f64()
    }
}

impl Wire for String {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        r.get_str()
    }
}

impl Wire for Bytes {
    fn encode(&self, w: &mut WireWriter) {
        w.put_bytes(self);
    }
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        r.get_bytes()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        let len = r.get_u64()?;
        if len > MAX_LEN {
            return Err(WireError::BadLength(len));
        }
        let mut out = Vec::with_capacity(len.min(1024) as usize);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEADBEEF);
        w.put_u64(u64::MAX);
        w.put_f64(-1.5);
        w.put_str("hello");
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_f64().unwrap(), -1.5);
        assert_eq!(r.get_str().unwrap(), "hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_input_detected() {
        let mut w = WireWriter::new();
        w.put_u64(42);
        let bytes = w.finish();
        let mut r = WireReader::new(bytes.slice(0..4));
        assert_eq!(r.get_u64(), Err(WireError::Truncated));
    }

    #[test]
    fn vec_roundtrip_via_wire_trait() {
        let v: Vec<u64> = vec![1, 2, 3, 500];
        let encoded = v.to_bytes();
        assert_eq!(Vec::<u64>::from_bytes(encoded).unwrap(), v);
    }

    #[test]
    fn option_roundtrip() {
        let some: Option<u64> = Some(9);
        let none: Option<u64> = None;
        assert_eq!(Option::<u64>::from_bytes(some.to_bytes()).unwrap(), some);
        assert_eq!(Option::<u64>::from_bytes(none.to_bytes()).unwrap(), none);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(1);
        w.put_u8(0xFF); // junk
        assert_eq!(u64::from_bytes(w.finish()), Err(WireError::Truncated));
    }

    #[test]
    fn wire_size_matches_encoding() {
        let v: Vec<u64> = vec![0; 10];
        assert_eq!(v.wire_size(), 8 + 10 * 8);
        let s = "abc".to_string();
        assert_eq!(s.wire_size(), 8 + 3);
    }

    #[test]
    fn bytes_zero_copy_slice() {
        let payload = Bytes::from(vec![9u8; 1000]);
        let encoded = payload.to_bytes();
        let decoded = Bytes::from_bytes(encoded).unwrap();
        assert_eq!(decoded.len(), 1000);
        assert_eq!(decoded[0], 9);
    }

    #[test]
    fn bad_option_tag() {
        let mut w = WireWriter::new();
        w.put_u8(2);
        assert_eq!(
            Option::<u64>::from_bytes(w.finish()),
            Err(WireError::BadTag(2))
        );
    }

    #[test]
    fn implausible_length_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX); // length prefix
        let mut r = WireReader::new(w.finish());
        assert!(matches!(r.get_bytes(), Err(WireError::BadLength(_))));
    }
}
