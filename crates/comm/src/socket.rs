//! [`SocketTransport`]: the [`Transport`] over real TCP sockets.
//!
//! Nodes exchange [`crate::frame`]-encoded messages over one TCP
//! connection per peer pair, so ordering per peer is TCP's ordering and a
//! multi-process deployment uses exactly this wire path. The in-process
//! [`SocketCluster`] builder wires `p` endpoints over loopback;
//! [`SocketTransport::join`] is the multi-process entry point (each OS
//! process binds its own rank's address from a shared address list).
//!
//! ## Handshake
//!
//! Connection establishment is deadlock-free by construction: rank `r`
//! *connects* to every lower rank and *accepts* from every higher rank.
//! Each side of a fresh connection sends a 12-byte hello — magic
//! `b"RKT1"`, its own rank, the cluster size, all little-endian `u32` —
//! the connector first, the acceptor in reply. A magic, rank, or size
//! mismatch aborts setup: it means the address list is wrong or two
//! incompatible clusters collided on a port.
//!
//! ## Shutdown
//!
//! Dropping the transport shuts every socket down; peer reader threads
//! observe EOF and exit. Once **all** peers have hung up and the inbox is
//! drained, receives report [`RecvError::Disconnected`] — the same
//! graceful-shutdown signal the local transport derives from channel
//! disconnection. Sends to a departed peer likewise report
//! `Disconnected` (best-effort, matching the protocol's semantics).

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use rocket_sanitize::Mutex;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use rocket_stats::Retry;

use crate::frame::{write_frame, FrameDecoder};
use crate::transport::{CommStats, Incoming, NodeId, RecvError, Transport};

/// Handshake magic: `b"RKT1"` little-endian.
const MAGIC: u32 = u32::from_le_bytes(*b"RKT1");

/// Poll interval while waiting for higher-ranked peers to dial in.
const CONNECT_RETRY: Duration = Duration::from_millis(20);

/// Cap on one handshake read and on the whole accept phase — without it a
/// peer that never starts (or a stray connection that sends fewer than 12
/// bytes) would wedge mesh establishment forever, while the dial side
/// fails loudly once [`connect_policy`]'s attempts are exhausted.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);

fn io_err(kind: io::ErrorKind, msg: String) -> io::Error {
    io::Error::new(kind, msg)
}

fn send_hello(stream: &mut TcpStream, rank: usize, cluster: usize) -> io::Result<()> {
    let mut hello = Vec::with_capacity(12);
    hello.extend_from_slice(&MAGIC.to_le_bytes());
    hello.extend_from_slice(&(rank as u32).to_le_bytes());
    hello.extend_from_slice(&(cluster as u32).to_le_bytes());
    stream.write_all(&hello)
}

fn read_u32(stream: &mut TcpStream) -> io::Result<u32> {
    let mut word = [0u8; 4];
    stream.read_exact(&mut word)?;
    Ok(u32::from_le_bytes(word))
}

fn recv_hello(stream: &mut TcpStream, cluster: usize) -> io::Result<usize> {
    let magic = read_u32(stream)?;
    let rank = read_u32(stream)? as usize;
    let size = read_u32(stream)? as usize;
    if magic != MAGIC {
        return Err(io_err(
            io::ErrorKind::InvalidData,
            format!("bad handshake magic {magic:#x}"),
        ));
    }
    if size != cluster {
        return Err(io_err(
            io::ErrorKind::InvalidData,
            format!("peer believes the cluster has {size} nodes, not {cluster}"),
        ));
    }
    if rank >= cluster {
        return Err(io_err(
            io::ErrorKind::InvalidData,
            format!("peer rank {rank} out of range for {cluster} nodes"),
        ));
    }
    Ok(rank)
}

/// Backoff for dialing a peer whose listener may not be up yet (separate
/// OS processes start in arbitrary order): ~10 s of total budget, delays
/// growing 20 ms → 500 ms with a little jitter so co-started processes
/// don't hammer a slow listener in lockstep.
fn connect_policy() -> Retry {
    Retry::new(28, Duration::from_millis(20))
        .factor(1.5)
        .cap(Duration::from_millis(500))
        .jitter(0.1)
}

fn connect_with_retry(addr: SocketAddr) -> io::Result<TcpStream> {
    connect_policy().run(|_| TcpStream::connect(addr))
}

/// [`Transport`] over per-peer TCP connections (loopback or LAN).
pub struct SocketTransport {
    node: NodeId,
    cluster: usize,
    /// Write halves, indexed by peer rank (`None` at our own index).
    writers: Vec<Option<Mutex<TcpStream>>>,
    /// Self-send fast path straight into the inbox.
    loopback: Sender<Incoming>,
    inbox: Receiver<Incoming>,
    stats: Arc<CommStats>,
    /// Peer reader threads still running (drives `Disconnected`).
    live_readers: Arc<AtomicUsize>,
    /// Per-peer connection state (`None` at our own index): cleared when
    /// the peer's reader thread exits or a send to it fails.
    peer_up: Vec<Option<Arc<AtomicBool>>>,
    readers: Vec<JoinHandle<()>>,
}

impl SocketTransport {
    /// Joins a cluster as `rank` of `addrs.len()` processes: binds
    /// `addrs[rank]`, connects to every lower rank (retrying while their
    /// listeners come up), and accepts every higher rank.
    ///
    /// This is the multi-process entry point — each OS process calls it
    /// with the same address list and its own rank (the `rocket-node`
    /// binary does exactly that).
    pub fn join(rank: usize, addrs: &[SocketAddr]) -> io::Result<SocketTransport> {
        let Some(&local) = addrs.get(rank) else {
            return Err(io_err(
                io::ErrorKind::InvalidInput,
                format!("rank {rank} out of range for {} addresses", addrs.len()),
            ));
        };
        let listener = TcpListener::bind(local)?;
        establish_mesh(rank, listener, addrs)
    }

    /// Builds the transport from one established, handshaken connection
    /// per peer (index = rank, `None` at `rank` itself).
    fn from_connections(rank: usize, conns: Vec<Option<TcpStream>>) -> io::Result<SocketTransport> {
        let p = conns.len();
        let stats = Arc::new(CommStats::default());
        let (loopback, inbox) = unbounded();
        let live_readers = Arc::new(AtomicUsize::new(0));
        let mut writers = Vec::with_capacity(p);
        let mut peer_up = Vec::with_capacity(p);
        let mut readers = Vec::new();
        for (peer, conn) in conns.into_iter().enumerate() {
            let Some(stream) = conn else {
                writers.push(None);
                peer_up.push(None);
                continue;
            };
            stream.set_nodelay(true)?;
            let read_half = stream.try_clone()?;
            live_readers.fetch_add(1, Ordering::AcqRel);
            let alive = Arc::clone(&live_readers);
            let up = Arc::new(AtomicBool::new(true));
            let up_flag = Arc::clone(&up);
            let tx = loopback.clone();
            let handle = std::thread::Builder::new()
                .name(format!("rocket-sock-{rank}-from-{peer}"))
                .spawn(move || {
                    read_loop(peer, read_half, tx);
                    up_flag.store(false, Ordering::Release);
                    alive.fetch_sub(1, Ordering::AcqRel);
                })
                .map_err(|e| io_err(io::ErrorKind::Other, format!("spawn reader: {e}")))?;
            readers.push(handle);
            writers.push(Some(Mutex::named("writer", stream)));
            peer_up.push(Some(up));
        }
        Ok(SocketTransport {
            node: rank,
            cluster: p,
            writers,
            loopback,
            inbox,
            stats,
            live_readers,
            peer_up,
            readers,
        })
    }

    fn deliver(&self, msg: Incoming) -> Incoming {
        self.stats.record_recv(msg.payload.len());
        msg
    }
}

/// Pumps one peer connection: decode frames, forward to the inbox. Exits
/// on EOF (peer shut down), connection error, or a corrupt frame (a byte
/// stream cannot resynchronize after a bad length prefix).
fn read_loop(peer: NodeId, mut stream: TcpStream, tx: Sender<Incoming>) {
    let mut decoder = FrameDecoder::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        let Some(data) = chunk.get(..n) else {
            return; // read() reported more bytes than the buffer holds
        };
        decoder.extend(data);
        loop {
            match decoder.next_frame() {
                Ok(Some(payload)) => {
                    if tx
                        .send(Incoming {
                            from: peer,
                            payload,
                        })
                        .is_err()
                    {
                        return; // transport dropped
                    }
                }
                Ok(None) => break,
                Err(_) => return,
            }
        }
    }
}

impl Transport for SocketTransport {
    fn node(&self) -> NodeId {
        self.node
    }

    fn cluster_size(&self) -> usize {
        self.cluster
    }

    fn send(&self, to: NodeId, payload: Bytes) -> Result<(), RecvError> {
        let len = payload.len();
        if to == self.node {
            // Self-sends bypass TCP but count like any other message so
            // both transports account identically.
            self.loopback
                .send(Incoming {
                    from: self.node,
                    payload,
                })
                .map_err(|_| RecvError::Disconnected)?;
        } else {
            // An out-of-range or self rank has no writer: report the peer
            // unreachable instead of panicking in the send path.
            let Some(Some(writer)) = self.writers.get(to) else {
                return Err(RecvError::Disconnected);
            };
            let mut stream = writer.lock();
            write_frame(&mut *stream, &payload).map_err(|_| {
                // A failed write is positive evidence the peer is gone.
                if let Some(Some(up)) = self.peer_up.get(to) {
                    up.store(false, Ordering::Release);
                }
                RecvError::Disconnected
            })?;
        }
        self.stats.record_send(len);
        Ok(())
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Incoming, RecvError> {
        match self.inbox.recv_timeout(timeout) {
            Ok(msg) => Ok(self.deliver(msg)),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Disconnected),
            Err(RecvTimeoutError::Timeout) => {
                // All peers hung up (readers exited): drain what is left,
                // then report disconnection — unless this is a
                // single-node cluster, which has no peers to lose.
                if self.cluster > 1 && self.live_readers.load(Ordering::Acquire) == 0 {
                    match self.inbox.try_recv() {
                        Ok(msg) => Ok(self.deliver(msg)),
                        Err(_) => Err(RecvError::Disconnected),
                    }
                } else {
                    Err(RecvError::Timeout)
                }
            }
        }
    }

    fn try_recv(&self) -> Option<Incoming> {
        self.inbox.try_recv().ok().map(|m| self.deliver(m))
    }

    fn peer_alive(&self, peer: NodeId) -> bool {
        match self.peer_up.get(peer) {
            Some(Some(up)) => up.load(Ordering::Acquire),
            // Our own slot (or an out-of-range rank, which has no
            // connection to lose).
            _ => true,
        }
    }

    fn stats(&self) -> Arc<CommStats> {
        Arc::clone(&self.stats)
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        for writer in self.writers.iter().flatten() {
            let stream = writer.lock();
            // lint:allow(blocking) — TcpStream::shutdown is a non-blocking
            // teardown syscall; the reported chain aliases the resource
            // executor's thread-joining `shutdown` by name.
            let _ = stream.shutdown(Shutdown::Both);
        }
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketTransport")
            .field("node", &self.node)
            .field("cluster", &self.cluster)
            .finish_non_exhaustive()
    }
}

/// Builder for an in-process cluster of [`SocketTransport`]s over
/// loopback TCP (ports assigned by the OS).
pub struct SocketCluster;

impl SocketCluster {
    /// Creates `p` fully connected endpoints (index = rank) over
    /// `127.0.0.1`. All listeners are bound before any connection is
    /// attempted, so establishment cannot race the address list.
    pub fn connect(p: usize) -> io::Result<Vec<SocketTransport>> {
        if p == 0 {
            return Err(io_err(
                io::ErrorKind::InvalidInput,
                "cluster must have at least one node".into(),
            ));
        }
        let mut listeners = Vec::with_capacity(p);
        let mut addrs = Vec::with_capacity(p);
        for _ in 0..p {
            let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
            addrs.push(listener.local_addr()?);
            listeners.push(listener);
        }
        let addrs = &addrs;
        std::thread::scope(|scope| {
            let handles: Vec<_> = listeners
                .into_iter()
                .enumerate()
                .map(|(rank, listener)| scope.spawn(move || establish_mesh(rank, listener, addrs)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(io_err(
                            io::ErrorKind::Other,
                            "mesh setup thread panicked".into(),
                        ))
                    })
                })
                .collect()
        })
    }
}

/// One rank's side of mesh establishment: connect down, accept up,
/// handshake everything, then assemble the transport.
fn establish_mesh(
    rank: usize,
    listener: TcpListener,
    addrs: &[SocketAddr],
) -> io::Result<SocketTransport> {
    let p = addrs.len();
    let mut conns: Vec<Option<TcpStream>> = (0..p).map(|_| None).collect();
    for (peer, &addr) in addrs.iter().enumerate().take(rank) {
        let mut stream = connect_with_retry(addr)?;
        stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        send_hello(&mut stream, rank, p)?;
        let said = recv_hello(&mut stream, p)?;
        if said != peer {
            return Err(io_err(
                io::ErrorKind::InvalidData,
                format!("dialed rank {peer} but reached rank {said}"),
            ));
        }
        stream.set_read_timeout(None)?;
        if let Some(slot) = conns.get_mut(peer) {
            *slot = Some(stream);
        }
    }
    // Accept phase, bounded by a deadline. A connection that fails the
    // handshake (a stray client, a half-open dial) is dropped without
    // consuming a peer slot; only a handshaken peer with a bogus rank
    // aborts establishment.
    let expected = p - rank - 1;
    let mut accepted = 0;
    let deadline = std::time::Instant::now() + HANDSHAKE_TIMEOUT;
    listener.set_nonblocking(true)?;
    while accepted < expected {
        match listener.accept() {
            Ok((mut stream, _)) => {
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
                match recv_hello(&mut stream, p) {
                    Ok(peer) => {
                        if peer <= rank || conns.get(peer).is_some_and(|c| c.is_some()) {
                            return Err(io_err(
                                io::ErrorKind::InvalidData,
                                format!("unexpected connection from rank {peer}"),
                            ));
                        }
                        send_hello(&mut stream, rank, p)?;
                        stream.set_read_timeout(None)?;
                        // recv_hello bounds `peer` below `p`, so the slot
                        // exists; a missing slot just drops the stray.
                        if let Some(slot) = conns.get_mut(peer) {
                            *slot = Some(stream);
                            accepted += 1;
                        }
                    }
                    Err(_) => continue, // stray connection: drop, keep waiting
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if std::time::Instant::now() >= deadline {
                    return Err(io_err(
                        io::ErrorKind::TimedOut,
                        format!(
                            "rank {rank}: {} of {expected} higher-ranked peers never connected",
                            expected - accepted
                        ),
                    ));
                }
                std::thread::sleep(CONNECT_RETRY);
            }
            Err(e) => return Err(e),
        }
    }
    SocketTransport::from_connections(rank, conns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(p: usize) -> Vec<SocketTransport> {
        SocketCluster::connect(p).expect("loopback cluster")
    }

    #[test]
    fn point_to_point_delivery() {
        let eps = cluster(3);
        eps[0].send(2, Bytes::from_static(b"hi")).unwrap();
        let msg = eps[2].recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(msg.from, 0);
        assert_eq!(msg.payload.as_ref(), b"hi");
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn self_send_works() {
        let eps = cluster(2);
        eps[1].send(1, Bytes::from_static(b"me")).unwrap();
        let msg = eps[1].recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(msg.from, 1);
    }

    #[test]
    fn fifo_per_sender() {
        let eps = cluster(2);
        for i in 0..100u8 {
            eps[0].send(1, Bytes::from(vec![i; 64])).unwrap();
        }
        for i in 0..100u8 {
            let msg = eps[1].recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(msg.from, 0);
            assert_eq!(msg.payload[0], i);
        }
    }

    #[test]
    fn large_payload_survives_framing() {
        let eps = cluster(2);
        let payload: Vec<u8> = (0..1_000_000u32).map(|i| i as u8).collect();
        eps[0].send(1, Bytes::from(payload.clone())).unwrap();
        let msg = eps[1].recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(msg.payload.as_ref(), &payload[..]);
    }

    #[test]
    fn stats_count_payload_bytes_both_directions() {
        let eps = cluster(2);
        eps[0].send(1, Bytes::from(vec![0u8; 100])).unwrap();
        eps[1].recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(eps[0].stats().msgs_sent(), 1);
        assert_eq!(eps[0].stats().bytes_sent(), 100);
        assert_eq!(eps[1].stats().msgs_recv(), 1);
        assert_eq!(eps[1].stats().bytes_recv(), 100);
    }

    #[test]
    fn shutdown_maps_to_disconnected() {
        let mut eps = cluster(2);
        let survivor = eps.pop().unwrap();
        drop(eps); // node 0 leaves: its sockets shut down
        let err = loop {
            match survivor.recv_timeout(Duration::from_millis(10)) {
                Err(e) => break e,
                Ok(_) => continue,
            }
        };
        assert_eq!(err, RecvError::Disconnected);
        // Sends to the departed peer fail the same way.
        assert_eq!(
            survivor.send(0, Bytes::from_static(b"late")).unwrap_err(),
            RecvError::Disconnected
        );
    }

    #[test]
    fn cross_thread_echo() {
        let mut eps = cluster(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let handle = std::thread::spawn(move || {
            let msg = b.recv_timeout(Duration::from_secs(5)).unwrap();
            b.send(msg.from, msg.payload).unwrap();
        });
        a.send(1, Bytes::from_static(b"ping")).unwrap();
        let reply = a.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(reply.payload.as_ref(), b"ping");
        assert_eq!(reply.from, 1);
        handle.join().unwrap();
    }

    #[test]
    fn four_node_all_to_all() {
        let eps = cluster(4);
        std::thread::scope(|scope| {
            for ep in &eps {
                scope.spawn(move || {
                    for peer in 0..ep.cluster_size() {
                        if peer != ep.node() {
                            ep.send(peer, Bytes::from(vec![ep.node() as u8])).unwrap();
                        }
                    }
                    let mut seen = Vec::new();
                    for _ in 0..ep.cluster_size() - 1 {
                        let msg = ep.recv_timeout(Duration::from_secs(5)).unwrap();
                        assert_eq!(msg.payload[0] as usize, msg.from);
                        seen.push(msg.from);
                    }
                    seen.sort_unstable();
                    let expect: Vec<usize> =
                        (0..ep.cluster_size()).filter(|&n| n != ep.node()).collect();
                    assert_eq!(seen, expect);
                });
            }
        });
    }

    #[test]
    fn join_rejects_bad_rank() {
        let addrs = vec!["127.0.0.1:9".parse().unwrap()];
        assert!(SocketTransport::join(1, &addrs).is_err());
    }

    /// A raw connection pair plus a running `read_loop` on the accept side,
    /// for driving the reader with hand-crafted byte sequences. Also
    /// returns a write handle to the reader's socket (for provoking RST).
    fn raw_reader() -> (TcpStream, TcpStream, JoinHandle<()>, Receiver<Incoming>) {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let server_w = server.try_clone().unwrap();
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || read_loop(0, server, tx));
        (client, server_w, handle, rx)
    }

    #[test]
    fn torn_final_frame_exits_reader_cleanly() {
        let (mut client, _w, reader, rx) = raw_reader();
        // One whole frame, then a frame whose peer dies 3 bytes in.
        client
            .write_all(&crate::frame::encode_frame(b"whole"))
            .unwrap();
        client.write_all(&20u32.to_le_bytes()).unwrap();
        client.write_all(&[1, 2, 3]).unwrap();
        drop(client);
        reader
            .join()
            .expect("reader must not panic on a torn frame");
        let delivered: Vec<Incoming> = std::iter::from_fn(|| rx.try_recv().ok()).collect();
        assert_eq!(delivered.len(), 1, "only the whole frame is delivered");
        assert_eq!(delivered[0].payload.as_ref(), b"whole");
    }

    #[test]
    fn connection_reset_exits_reader_cleanly() {
        let (client, mut server_w, reader, rx) = raw_reader();
        // Closing a socket that still has unread inbound data makes the
        // kernel send RST instead of FIN, so the reader sees a hard
        // connection error rather than clean EOF.
        server_w.write_all(b"you never read this").unwrap();
        std::thread::sleep(Duration::from_millis(50)); // let it land
        drop(client);
        reader.join().expect("reader must not panic on RST");
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn corrupt_length_prefix_exits_reader_cleanly() {
        let (mut client, _w, reader, rx) = raw_reader();
        // Length prefix far beyond MAX_FRAME: unrecoverable for a byte
        // stream, so the reader drops the connection.
        client.write_all(&u32::MAX.to_le_bytes()).unwrap();
        client.write_all(&[0u8; 32]).unwrap();
        reader.join().expect("reader must not panic on corruption");
        assert!(rx.try_recv().is_err());
        drop(client);
    }

    #[test]
    fn peer_loss_flips_peer_alive() {
        let mut eps = cluster(3);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        assert!((0..3).all(|p| a.peer_alive(p)), "all up at start");
        drop(b);
        // Rank 1's sockets shut down; a's reader observes EOF shortly.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while a.peer_alive(1) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!a.peer_alive(1), "dead peer must be reported down");
        assert!(a.peer_alive(0), "own slot stays up");
        assert!(a.peer_alive(2), "surviving peer stays up");
        // The surviving pair still works.
        a.send(2, Bytes::from_static(b"still-on")).unwrap();
        let msg = c.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(msg.payload.as_ref(), b"still-on");
    }

    #[test]
    fn send_failure_marks_peer_down() {
        let mut eps = cluster(2);
        let a = eps.remove(0);
        drop(eps); // rank 1 gone
                   // TCP may buffer a few sends before the failure surfaces; keep
                   // pushing until the write errors.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match a.send(1, Bytes::from(vec![0u8; 4096])) {
                Err(e) => {
                    assert_eq!(e, RecvError::Disconnected);
                    break;
                }
                Ok(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5))
                }
                Ok(_) => panic!("sends to a dead peer never failed"),
            }
        }
        assert!(!a.peer_alive(1));
    }
}
