use rocket_apps::microscopy::*;
use rocket_core::Application;
use rocket_storage::ObjectStore;

#[test]
#[ignore]
fn scan() {
    for noise in [0.02f64, 0.04, 0.06] {
        let config = MicroscopyConfig {
            particles: 10,
            structures: 1,
            labelling: 1.0,
            noise,
            points_min: 80,
            points_max: 140,
            ..Default::default()
        };
        let app = MicroscopyApp::new(&config);
        let ds = MicroscopyDataset::generate(config.clone());
        let pts = |i: u64| {
            let raw = ds.store.read(&MicroscopyDataset::key(i)).unwrap();
            let mut parsed = vec![0u8; app.parsed_bytes()];
            app.parse(i, &raw, &mut parsed).unwrap();
            let n = u32::from_le_bytes(parsed[..4].try_into().unwrap()) as usize;
            (0..n)
                .map(|p| {
                    let o = 4 + p * 8;
                    (
                        f32::from_le_bytes(parsed[o..o + 4].try_into().unwrap()),
                        f32::from_le_bytes(parsed[o + 4..o + 8].try_into().unwrap()),
                    )
                })
                .collect::<Vec<_>>()
        };
        let tau = std::f64::consts::TAU;
        for grid in [24usize, 48, 96] {
            for sig_mult in [1.0f64, 2.0, 3.0] {
                let sigma = 2.0 * noise * sig_mult;
                let mut worst = 0.0f64;
                let mut fails = 0;
                for i in 0..10usize {
                    for j in (i + 1)..10 {
                        let reg =
                            register(&pts(i as u64), &pts(j as u64), Metric::GmmL2, grid, sigma);
                        let expected = (ds.rotation_of[j] - ds.rotation_of[i]).rem_euclid(tau);
                        let mut err = (reg.rotation - expected).abs();
                        err = err.min(tau - err);
                        worst = worst.max(err);
                        if err > 0.15 {
                            fails += 1;
                        }
                    }
                }
                eprintln!(
                    "noise={noise} grid={grid} sigma={sigma:.3}: worst={:.1}deg fails={fails}/45",
                    worst.to_degrees()
                );
            }
        }
    }
}
