//! The three real-world applications of the Rocket paper (§5), rebuilt on
//! synthetic data with verifiable ground truth:
//!
//! * [`forensics`] — common-source camera identification: PRNU noise
//!   residual extraction + normalized cross-correlation,
//! * [`bioinfo`] — alignment-free phylogeny: k-mer composition vectors +
//!   sparse correlation distance (with [`phylo`] finishing the tree),
//! * [`microscopy`] — localization-microscopy particle fusion: GMM-based
//!   registration with rotation search.
//!
//! Each module ships a data generator (`*Dataset::generate`) producing an
//! in-memory object store plus ground truth, and an [`rocket_core::Application`]
//! implementation whose stages do real compute. [`profiles`] exposes the
//! paper's Table 1 timing/size characteristics for the simulator.

#![warn(missing_docs)]

pub mod bioinfo;
pub mod forensics;
pub mod json;
pub mod microscopy;
pub mod phylo;
pub mod profiles;

pub use bioinfo::{BioApp, BioConfig, BioDataset};
pub use forensics::{ForensicsApp, ForensicsConfig, ForensicsDataset};
pub use microscopy::{Metric, MicroscopyApp, MicroscopyConfig, MicroscopyDataset, Registration};
pub use profiles::WorkloadProfile;
