//! Workload profiles: the stage-time and size characteristics of the three
//! applications, as reported in the paper's Table 1 (measured on an NVIDIA
//! TitanX Maxwell) and Fig 7 (comparison-time distributions).
//!
//! The discrete-event simulator consumes these profiles; the shapes follow
//! Fig 7 — tight normal for the regular forensics kernel, right-skewed
//! gamma for bioinformatics, and a heavy log-normal for the microscopy
//! registration times (564 ± 348 ms).

use rocket_stats::Dist;

/// Re-exported from `rocket-core`, where the [`Scenario`] API consumes it
/// (the struct moved there with the unified driver API; this alias keeps
/// `rocket_apps::WorkloadProfile` paths working).
///
/// [`Scenario`]: rocket_core::Scenario
pub use rocket_core::WorkloadProfile;

const MS: f64 = 1e-3;

/// Common-source identification (digital forensics, §5.1): n = 4980 Dresden
/// images, 38.1 MB PRNU patterns, parse 130.8±14.11 ms, pre-process
/// 20.5±0.02 ms, compare 1.1±0.01 ms. Regular workload (Fig 7 left).
pub fn forensics() -> WorkloadProfile {
    WorkloadProfile {
        name: "forensics",
        items: 4980,
        file_bytes: 3_900_000,  // 19.4 GB / 4980 files
        item_bytes: 38_100_000, // Table 1 slot size 38.1 MB
        parse: Dist::normal_nonneg(130.8 * MS, 14.11 * MS),
        preprocess: Some(Dist::normal_nonneg(20.5 * MS, 0.02 * MS)),
        compare: Dist::normal_nonneg(1.1 * MS, 0.01 * MS),
        postprocess: Dist::Constant(0.0),
        paper_device_slots: 291,
        paper_host_slots: 1050,
    }
}

/// Phylogeny tree construction (bioinformatics, §5.2): n = 2500 proteomes,
/// 145.8 MB composition vectors, parse 36.9±14.79 ms, pre-process
/// 27.0±4.90 ms, compare 2.1±0.79 ms. Irregular (Fig 7 middle) — modelled
/// as a right-skewed gamma matched to the reported moments.
pub fn bioinformatics() -> WorkloadProfile {
    WorkloadProfile {
        name: "bioinformatics",
        items: 2500,
        file_bytes: 720_000, // 1.8 GB / 2500 files
        item_bytes: 145_800_000,
        parse: Dist::gamma_from_moments(36.9 * MS, 14.79 * MS),
        preprocess: Some(Dist::gamma_from_moments(27.0 * MS, 4.90 * MS)),
        compare: Dist::gamma_from_moments(2.1 * MS, 0.79 * MS),
        postprocess: Dist::Constant(0.0),
        paper_device_slots: 81,
        paper_host_slots: 280,
    }
}

/// The Cartesius large-scale variant of the bioinformatics workload (§6.6):
/// all 6818 reference bacteria proteomes.
pub fn bioinformatics_large() -> WorkloadProfile {
    WorkloadProfile {
        items: 6818,
        ..bioinformatics()
    }
}

/// Localization-microscopy particle fusion (§5.3): n = 256 particles, tiny
/// 6 KB items, no pre-processing, heavily irregular compare of
/// 564.3±348 ms (Fig 7 right) — modelled log-normal.
pub fn microscopy() -> WorkloadProfile {
    WorkloadProfile {
        name: "microscopy",
        items: 256,
        file_bytes: 586_000, // 150 MB / 256 files
        item_bytes: 6_000,
        parse: Dist::normal_nonneg(27.4 * MS, 1.56 * MS),
        preprocess: None,
        compare: Dist::LogNormal {
            mean: 564.3 * MS,
            std: 348.0 * MS,
        },
        postprocess: Dist::Constant(0.0),
        paper_device_slots: 256,
        paper_host_slots: 256,
    }
}

/// All three paper workloads.
pub fn all() -> Vec<WorkloadProfile> {
    vec![forensics(), bioinformatics(), microscopy()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocket_stats::{Distribution, OnlineStats, Xoshiro256};

    #[test]
    fn paper_pair_counts() {
        // Table 1: forensics 12,397,710 and bioinformatics 3,123,750 match
        // n(n−1)/2 exactly. For microscopy the paper reports 130,816 pairs
        // for n = 256 files, which equals C(512, 2) — consistent with two
        // items per particle file, not with C(256, 2) = 32,640; we model
        // one item per file (documented in EXPERIMENTS.md).
        assert_eq!(forensics().pairs(), 12_397_710);
        assert_eq!(bioinformatics().pairs(), 3_123_750);
        assert_eq!(microscopy().pairs(), 32_640);
    }

    #[test]
    fn compare_time_moments_match_table1() {
        let mut rng = Xoshiro256::seed_from(1);
        for (profile, mean, std) in [
            (forensics(), 1.1e-3, 0.01e-3),
            (bioinformatics(), 2.1e-3, 0.79e-3),
            (microscopy(), 564.3e-3, 348.0e-3),
        ] {
            let mut s = OnlineStats::new();
            for _ in 0..100_000 {
                s.push(profile.compare.sample(&mut rng));
            }
            assert!(
                (s.mean() - mean).abs() / mean < 0.05,
                "{}: mean {} vs {}",
                profile.name,
                s.mean(),
                mean
            );
            assert!(
                (s.std() - std).abs() / std < 0.15,
                "{}: std {} vs {}",
                profile.name,
                s.std(),
                std
            );
            assert!(s.min() >= 0.0, "{}: negative service time", profile.name);
        }
    }

    #[test]
    fn load_dominates_compare() {
        // The premise of the caching design (§4.1): loading an item costs
        // far more than one comparison for the data-intensive apps.
        for p in [forensics(), bioinformatics()] {
            assert!(
                p.mean_load_seconds() > 10.0 * p.compare.mean(),
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn microscopy_is_compute_bound() {
        let p = microscopy();
        assert!(p.preprocess.is_none());
        assert!(p.compare.mean() > p.mean_load_seconds());
    }

    #[test]
    fn scaling_preserves_slot_ratio() {
        let p = forensics();
        let s = p.scaled(10);
        assert_eq!(s.items, 498);
        let ratio_full = p.paper_host_slots as f64 / p.items as f64;
        let ratio_scaled = s.paper_host_slots as f64 / s.items as f64;
        assert!((ratio_full - ratio_scaled).abs() / ratio_full < 0.1);
    }

    #[test]
    fn large_variant_has_more_items() {
        assert_eq!(bioinformatics_large().items, 6818);
        assert_eq!(
            bioinformatics_large().item_bytes,
            bioinformatics().item_bytes
        );
    }
}
