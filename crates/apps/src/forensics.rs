//! Common-source identification (digital forensics, §5.1 of the paper).
//!
//! Cameras imprint a Photo Response Non-Uniformity (PRNU) noise pattern on
//! every photo they take: per-pixel sensitivity deviations that survive in
//! the image as a weak multiplicative noise. Comparing the noise residuals
//! of two images with Normalized Cross-Correlation (NCC) reveals whether
//! they came from the same sensor.
//!
//! The paper processes 4980 Dresden-database JPEGs with the Netherlands
//! Forensic Institute's GPU kernels. Here both the data and kernels are
//! rebuilt: [`ForensicsDataset::generate`] synthesizes images with genuine
//! per-camera PRNU patterns (so the *answer* is verifiable), and the
//! pipeline stages implement real residual extraction and NCC:
//!
//! * **parse** (CPU): decode the image container to grayscale floats
//!   (stand-in for libjpeg decoding),
//! * **pre-process** (GPU): extract the noise residual — subtract a 3×3
//!   local mean (a denoising filter), then normalize to zero mean and unit
//!   L2 norm,
//! * **compare** (GPU): NCC of two residuals = dot product of the
//!   normalized patterns,
//! * **post-process** (CPU): read out the correlation score.

use rocket_core::bytesutil;
use rocket_core::{AppError, Application, ItemId, Pair};
use rocket_stats::Xoshiro256;
use rocket_storage::MemStore;

const MAGIC: &[u8; 8] = b"PRNUIMG1";

/// Synthetic image-set configuration.
#[derive(Debug, Clone)]
pub struct ForensicsConfig {
    /// Number of images (the paper's n = 4980; tests use far fewer).
    pub images: u64,
    /// Number of distinct cameras.
    pub cameras: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// PRNU strength (relative per-pixel sensitivity deviation).
    pub prnu_strength: f32,
    /// Additive readout-noise sigma (in \[0,1\] pixel units).
    pub readout_noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForensicsConfig {
    fn default() -> Self {
        Self {
            images: 48,
            cameras: 4,
            width: 64,
            height: 64,
            prnu_strength: 0.03,
            readout_noise: 0.02,
            seed: 0xF02E,
        }
    }
}

/// A generated data set plus its ground truth.
pub struct ForensicsDataset {
    /// The image files.
    pub store: MemStore,
    /// `camera_of[i]` = camera that took image `i`.
    pub camera_of: Vec<usize>,
    /// The configuration used.
    pub config: ForensicsConfig,
}

impl ForensicsDataset {
    /// Storage key of image `i`.
    pub fn key(i: ItemId) -> String {
        format!("images/{i:06}.img")
    }

    /// Generates a synthetic image set with per-camera PRNU patterns.
    pub fn generate(config: ForensicsConfig) -> ForensicsDataset {
        let (w, h) = (config.width, config.height);
        let mut rng = Xoshiro256::seed_from(config.seed);
        // One fixed PRNU pattern per camera.
        let prnu: Vec<Vec<f32>> = (0..config.cameras)
            .map(|_| {
                (0..w * h)
                    .map(|_| (rng.f64() as f32 * 2.0 - 1.0) * config.prnu_strength)
                    .collect()
            })
            .collect();
        let store = MemStore::new();
        let mut camera_of = Vec::with_capacity(config.images as usize);
        for i in 0..config.images {
            let cam = rng.below(config.cameras);
            camera_of.push(cam);
            // Scene: a smooth random gradient plus a bright blob, different
            // per image so scene content does not correlate across images.
            let gx = rng.f64() as f32;
            let gy = rng.f64() as f32;
            let bx = rng.f64() as f32 * w as f32;
            let by = rng.f64() as f32 * h as f32;
            let brad = (w.min(h) as f32) * (0.15 + 0.2 * rng.f64() as f32);
            let mut pixels = vec![0u8; w * h];
            for y in 0..h {
                for x in 0..w {
                    let idx = y * w + x;
                    let mut scene =
                        0.35 + 0.3 * (gx * x as f32 / w as f32 + gy * y as f32 / h as f32);
                    let d2 = (x as f32 - bx).powi(2) + (y as f32 - by).powi(2);
                    if d2 < brad * brad {
                        scene += 0.25 * (1.0 - d2 / (brad * brad));
                    }
                    // PRNU is multiplicative sensor noise.
                    let noise = (rng.f64() as f32 * 2.0 - 1.0) * config.readout_noise;
                    let value = scene * (1.0 + prnu[cam][idx]) + noise;
                    pixels[idx] = (value.clamp(0.0, 1.0) * 255.0) as u8;
                }
            }
            let mut file = Vec::with_capacity(16 + w * h);
            file.extend_from_slice(MAGIC);
            file.extend_from_slice(&(w as u32).to_le_bytes());
            file.extend_from_slice(&(h as u32).to_le_bytes());
            file.extend_from_slice(&pixels);
            store.put(Self::key(i), file);
        }
        ForensicsDataset {
            store,
            camera_of,
            config,
        }
    }
}

/// The forensics [`Application`]: PRNU extraction + NCC scoring.
pub struct ForensicsApp {
    images: u64,
    width: usize,
    height: usize,
}

impl ForensicsApp {
    /// Creates the application for a data set generated with `config`.
    pub fn new(config: &ForensicsConfig) -> Self {
        Self {
            images: config.images,
            width: config.width,
            height: config.height,
        }
    }

    fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// 3×3 box-filter local mean (the denoising filter of the residual
    /// extraction), exposed for kernel testing.
    pub fn box_mean(input: &[f32], w: usize, h: usize, out: &mut [f32]) {
        for y in 0..h {
            for x in 0..w {
                let mut sum = 0.0f32;
                let mut count = 0.0f32;
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let (nx, ny) = (x as i64 + dx, y as i64 + dy);
                        if nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h {
                            sum += input[ny as usize * w + nx as usize];
                            count += 1.0;
                        }
                    }
                }
                out[y * w + x] = sum / count;
            }
        }
    }

    /// Residual extraction + normalization, exposed for kernel testing:
    /// the output has zero mean and unit L2 norm, so NCC is a plain dot
    /// product.
    pub fn extract_residual(gray: &[f32], w: usize, h: usize) -> Vec<f32> {
        let mut mean = vec![0.0f32; w * h];
        Self::box_mean(gray, w, h, &mut mean);
        let mut res: Vec<f32> = gray.iter().zip(&mean).map(|(&p, &m)| p - m).collect();
        let avg = res.iter().sum::<f32>() / res.len() as f32;
        for r in &mut res {
            *r -= avg;
        }
        let norm = res.iter().map(|r| r * r).sum::<f32>().sqrt();
        if norm > 0.0 {
            for r in &mut res {
                *r /= norm;
            }
        }
        res
    }
}

impl Application for ForensicsApp {
    type Output = f64;

    fn name(&self) -> &str {
        "forensics"
    }

    fn item_count(&self) -> u64 {
        self.images
    }

    fn file_for(&self, item: ItemId) -> String {
        ForensicsDataset::key(item)
    }

    fn parsed_bytes(&self) -> usize {
        self.pixels() * 4
    }

    fn item_bytes(&self) -> usize {
        self.pixels() * 4
    }

    fn result_bytes(&self) -> usize {
        8
    }

    fn parse(&self, item: ItemId, raw: &[u8], out: &mut [u8]) -> Result<(), AppError> {
        if raw.len() < 16 || &raw[..8] != MAGIC {
            return Err(AppError::new(
                "parse",
                format!("item {item}: bad image magic"),
            ));
        }
        let w = u32::from_le_bytes([raw[8], raw[9], raw[10], raw[11]]) as usize;
        let h = u32::from_le_bytes([raw[12], raw[13], raw[14], raw[15]]) as usize;
        if w != self.width || h != self.height {
            return Err(AppError::new(
                "parse",
                format!(
                    "item {item}: dimensions {w}x{h}, expected {}x{}",
                    self.width, self.height
                ),
            ));
        }
        let pixels = &raw[16..];
        if pixels.len() != w * h {
            return Err(AppError::new(
                "parse",
                format!("item {item}: truncated pixel data"),
            ));
        }
        let gray: Vec<f32> = pixels.iter().map(|&p| p as f32 / 255.0).collect();
        bytesutil::write_f32(out, &gray);
        Ok(())
    }

    fn preprocess(&self, _item: ItemId, input: &[u8], out: &mut [u8]) -> Result<(), AppError> {
        let gray = bytesutil::read_f32(input, self.pixels());
        let residual = ForensicsApp::extract_residual(&gray, self.width, self.height);
        bytesutil::write_f32(out, &residual);
        Ok(())
    }

    fn compare(
        &self,
        left: (ItemId, &[u8]),
        right: (ItemId, &[u8]),
        out: &mut [u8],
    ) -> Result<(), AppError> {
        let n = self.pixels();
        // NCC of unit-norm residuals = dot product; read directly from the
        // device buffers to avoid allocating per pair.
        let mut dot = 0.0f64;
        for i in 0..n {
            let o = i * 4;
            let a = f32::from_le_bytes([left.1[o], left.1[o + 1], left.1[o + 2], left.1[o + 3]]);
            let b =
                f32::from_le_bytes([right.1[o], right.1[o + 1], right.1[o + 2], right.1[o + 3]]);
            dot += (a * b) as f64;
        }
        out[..8].copy_from_slice(&dot.to_le_bytes());
        Ok(())
    }

    fn postprocess(&self, _pair: Pair, raw: &[u8]) -> f64 {
        f64::from_le_bytes(raw[..8].try_into().expect("8-byte result"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocket_storage::ObjectStore;

    fn small() -> (ForensicsDataset, ForensicsApp) {
        let config = ForensicsConfig {
            images: 12,
            cameras: 3,
            width: 48,
            height: 48,
            ..Default::default()
        };
        let app = ForensicsApp::new(&config);
        (ForensicsDataset::generate(config), app)
    }

    fn residual_of(ds: &ForensicsDataset, app: &ForensicsApp, i: u64) -> Vec<f32> {
        let raw = ds.store.read(&ForensicsDataset::key(i)).unwrap();
        let mut parsed = vec![0u8; app.parsed_bytes()];
        app.parse(i, &raw, &mut parsed).unwrap();
        let mut item = vec![0u8; app.item_bytes()];
        app.preprocess(i, &parsed, &mut item).unwrap();
        bytesutil::read_f32(&item, app.pixels())
    }

    fn ncc(ds: &ForensicsDataset, app: &ForensicsApp, i: u64, j: u64) -> f64 {
        let a = residual_of(ds, app, i);
        let b = residual_of(ds, app, j);
        a.iter().zip(&b).map(|(&x, &y)| (x * y) as f64).sum()
    }

    #[test]
    fn dataset_is_deterministic() {
        let c = ForensicsConfig {
            images: 4,
            ..Default::default()
        };
        let a = ForensicsDataset::generate(c.clone());
        let b = ForensicsDataset::generate(c);
        assert_eq!(a.camera_of, b.camera_of);
        for i in 0..4 {
            assert_eq!(
                a.store.read(&ForensicsDataset::key(i)).unwrap(),
                b.store.read(&ForensicsDataset::key(i)).unwrap()
            );
        }
    }

    #[test]
    fn residuals_are_normalized() {
        let (ds, app) = small();
        let r = residual_of(&ds, &app, 0);
        let mean: f32 = r.iter().sum::<f32>() / r.len() as f32;
        let norm: f32 = r.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(mean.abs() < 1e-5, "mean {mean}");
        assert!((norm - 1.0).abs() < 1e-4, "norm {norm}");
    }

    #[test]
    fn same_camera_correlates_higher() {
        let (ds, app) = small();
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in 0..ds.camera_of.len() as u64 {
            for j in (i + 1)..ds.camera_of.len() as u64 {
                let score = ncc(&ds, &app, i, j);
                if ds.camera_of[i as usize] == ds.camera_of[j as usize] {
                    same.push(score);
                } else {
                    diff.push(score);
                }
            }
        }
        assert!(!same.is_empty() && !diff.is_empty());
        let min_same = same.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_diff = diff.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            min_same > max_diff,
            "PRNU must separate cameras: min same {min_same:.4} vs max diff {max_diff:.4}"
        );
    }

    #[test]
    fn ncc_is_symmetric_and_selfcorrelated() {
        let (ds, app) = small();
        let ab = ncc(&ds, &app, 0, 1);
        let ba = ncc(&ds, &app, 1, 0);
        assert!((ab - ba).abs() < 1e-9);
        let aa = ncc(&ds, &app, 0, 0);
        assert!((aa - 1.0).abs() < 1e-4, "self NCC {aa}");
    }

    #[test]
    fn parse_rejects_corrupt_files() {
        let (_, app) = small();
        let mut out = vec![0u8; app.parsed_bytes()];
        assert!(app.parse(0, b"short", &mut out).is_err());
        let mut bad_magic = vec![0u8; 16 + 48 * 48];
        bad_magic[..8].copy_from_slice(b"NOTANIMG");
        assert!(app.parse(0, &bad_magic, &mut out).is_err());
        let mut wrong_dims = Vec::new();
        wrong_dims.extend_from_slice(MAGIC);
        wrong_dims.extend_from_slice(&10u32.to_le_bytes());
        wrong_dims.extend_from_slice(&10u32.to_le_bytes());
        wrong_dims.extend_from_slice(&[0u8; 100]);
        assert!(app.parse(0, &wrong_dims, &mut out).is_err());
    }

    #[test]
    fn box_mean_of_constant_is_constant() {
        let input = vec![0.5f32; 25];
        let mut out = vec![0.0f32; 25];
        ForensicsApp::box_mean(&input, 5, 5, &mut out);
        for v in out {
            assert!((v - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn compare_via_application_trait() {
        let (ds, app) = small();
        // Drive the exact byte-level kernel interface.
        let a = residual_of(&ds, &app, 0);
        let b = residual_of(&ds, &app, 1);
        let mut abuf = vec![0u8; app.item_bytes()];
        let mut bbuf = vec![0u8; app.item_bytes()];
        bytesutil::write_f32(&mut abuf, &a);
        bytesutil::write_f32(&mut bbuf, &b);
        let mut result = vec![0u8; app.result_bytes()];
        app.compare((0, &abuf), (1, &bbuf), &mut result).unwrap();
        let score = app.postprocess(Pair::new(0, 1), &result);
        let expected: f64 = a.iter().zip(&b).map(|(&x, &y)| (x * y) as f64).sum();
        assert!((score - expected).abs() < 1e-12);
    }

    #[test]
    fn table1_shape_data_grows_after_preprocess() {
        // Table 1: forensics data grows ~10x from disk to memory. Synthetic
        // u8 → f32 conversion reproduces the direction (4x + header loss).
        let (ds, app) = small();
        let disk = ds.store.size(&ForensicsDataset::key(0)).unwrap();
        assert!(app.item_bytes() as u64 > 3 * disk);
    }
}
