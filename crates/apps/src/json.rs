//! Minimal JSON parser/writer.
//!
//! The microscopy application stores particles "in JSON format" (§5.3); a
//! full JSON dependency is not in the sanctioned crate set, and the subset
//! needed — objects, arrays, numbers, strings, booleans, null — is small
//! enough to implement and test directly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys for deterministic output).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up an object field.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string.
    pub fn to_string_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (requires full consumption of the input).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at(p.pos, "trailing characters"));
        }
        Ok(v)
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(pos: usize, message: impl Into<String>) -> Self {
        Self {
            pos,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(self.pos, format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(JsonError::at(self.pos, format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(JsonError::at(
                self.pos,
                format!("unexpected '{}'", c as char),
            )),
            None => Err(JsonError::at(self.pos, "unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at(start, "invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::at(start, format!("bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError::at(self.pos, "short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| JsonError::at(self.pos, "bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| JsonError::at(self.pos, "bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::at(self.pos, "bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::at(self.pos, "invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(JsonError::at(self.pos, "unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parse_nested() {
        let doc = r#"{"points": [[1.5, -2.0], [0, 3]], "name": "p1", "ok": true}"#;
        let v = Json::parse(doc).unwrap();
        let points = v.get("points").unwrap().as_arr().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].as_arr().unwrap()[0].as_f64(), Some(1.5));
        assert_eq!(v.get("name").unwrap(), &Json::Str("p1".into()));
    }

    #[test]
    fn roundtrip_through_writer() {
        let doc = r#"{"a":[1,2.5,null],"b":{"c":"x\ny"},"d":false}"#;
        let v = Json::parse(doc).unwrap();
        let emitted = v.to_string_compact();
        assert_eq!(Json::parse(&emitted).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""line\nquote\"uA""#).unwrap();
        assert_eq!(v, Json::Str("line\nquote\"uA".into()));
        let out = Json::Str("a\"b\\c\nd".into()).to_string_compact();
        assert_eq!(Json::parse(&out).unwrap(), Json::Str("a\"b\\c\nd".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" {\n\t\"k\" :\r [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn integers_emitted_without_fraction() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(3.25).to_string_compact(), "3.25");
    }

    #[test]
    fn error_positions() {
        let err = Json::parse("[1, x]").unwrap_err();
        assert_eq!(err.pos, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
