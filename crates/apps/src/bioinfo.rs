//! Phylogeny tree construction (bioinformatics, §5.2 of the paper).
//!
//! The alignment-free method of Qi, Wang & Hao (2004) reconstructs
//! prokaryote phylogenies from whole proteomes: each species is summarized
//! by a *composition vector* (CV) — k-mer frequencies corrected by a
//! (k−1)-order Markov prediction — and the distance between two species is
//! derived from the cosine correlation of their sparse CVs.
//!
//! Stage mapping:
//!
//! * **parse** (CPU): FASTA decode → amino-acid code string (stands in for
//!   the paper's decompress-FASTA step),
//! * **pre-process** (GPU): build the sparse composition vector — the
//!   expensive stage ("extracting these CVs is expensive since it requires
//!   scanning the entire genome"),
//! * **compare** (GPU): sparse dot product → correlation → distance
//!   ("comparing two CVs is cheap"); irregular because vector sparsity
//!   varies per species,
//! * **post-process** (CPU): read the distance.
//!
//! [`crate::phylo`] turns the resulting distance matrix into a tree,
//! completing the paper's application pipeline.

use rocket_core::{AppError, Application, ItemId, Pair};
use rocket_stats::Xoshiro256;
use rocket_storage::MemStore;

/// The 20 proteinogenic amino acids.
pub const ALPHABET: &[u8; 20] = b"ACDEFGHIKLMNPQRSTVWY";

/// Synthetic proteome-set configuration.
#[derive(Debug, Clone)]
pub struct BioConfig {
    /// Number of species (the paper's n = 2500 / 6818).
    pub species: u64,
    /// Number of unrelated ancestral clusters.
    pub clusters: usize,
    /// Proteome length in residues.
    pub proteome_len: usize,
    /// Per-residue substitution probability within a cluster.
    pub mutation_rate: f64,
    /// k-mer length for the composition vectors.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BioConfig {
    fn default() -> Self {
        Self {
            species: 30,
            clusters: 3,
            proteome_len: 4000,
            mutation_rate: 0.05,
            k: 3,
            seed: 0xB10,
        }
    }
}

/// A generated proteome set plus ground truth.
pub struct BioDataset {
    /// FASTA files.
    pub store: MemStore,
    /// `cluster_of[i]` = ancestral cluster of species `i`.
    pub cluster_of: Vec<usize>,
    /// The configuration used.
    pub config: BioConfig,
}

impl BioDataset {
    /// Storage key of species `i`.
    pub fn key(i: ItemId) -> String {
        format!("proteomes/sp{i:05}.fasta")
    }

    /// Generates proteomes: one random ancestor per cluster, members are
    /// point-mutated copies, so within-cluster CV distance is small and
    /// between-cluster distance is large.
    pub fn generate(config: BioConfig) -> BioDataset {
        let mut rng = Xoshiro256::seed_from(config.seed);
        let ancestors: Vec<Vec<u8>> = (0..config.clusters)
            .map(|_| {
                (0..config.proteome_len)
                    .map(|_| ALPHABET[rng.below(20)])
                    .collect()
            })
            .collect();
        let store = MemStore::new();
        let mut cluster_of = Vec::with_capacity(config.species as usize);
        for i in 0..config.species {
            let cluster = rng.below(config.clusters);
            cluster_of.push(cluster);
            let mut seq = ancestors[cluster].clone();
            for residue in &mut seq {
                if rng.chance(config.mutation_rate) {
                    *residue = ALPHABET[rng.below(20)];
                }
            }
            let mut fasta = format!(">sp{i:05} synthetic cluster={cluster}\n");
            for line in seq.chunks(60) {
                fasta.push_str(std::str::from_utf8(line).expect("ascii"));
                fasta.push('\n');
            }
            store.put(Self::key(i), fasta.into_bytes());
        }
        BioDataset {
            store,
            cluster_of,
            config,
        }
    }
}

/// Builds the Qi-et-al. composition vector of an amino-acid code sequence
/// (codes in `0..20`): k-mer frequencies minus the (k−1)-order Markov
/// prediction, relative to the prediction. Returns sorted `(kmer_index,
/// value)` pairs.
pub fn composition_vector(codes: &[u8], k: usize) -> Vec<(u32, f32)> {
    assert!(k >= 2, "composition vectors need k >= 2");
    assert!(20usize.pow(k as u32) <= u32::MAX as usize, "k too large");
    let dim_k = 20usize.pow(k as u32);
    let dim_k1 = 20usize.pow(k as u32 - 1);
    let dim_k2 = 20usize.pow(k as u32 - 2);
    if codes.len() < k {
        return Vec::new();
    }
    let count = |len: usize, dim: usize| -> Vec<f64> {
        let mut c = vec![0.0f64; dim];
        let total = codes.len() + 1 - len;
        for w in codes.windows(len) {
            let mut idx = 0usize;
            for &ch in w {
                idx = idx * 20 + ch as usize;
            }
            c[idx] += 1.0;
        }
        for v in &mut c {
            *v /= total as f64;
        }
        c
    };
    let f_k = count(k, dim_k);
    let f_k1 = count(k - 1, dim_k1);
    let f_k2 = if k == 2 {
        Vec::new()
    } else {
        count(k - 2, dim_k2)
    };

    let mut out = Vec::new();
    for (idx, &f) in f_k.iter().enumerate() {
        if f == 0.0 {
            continue;
        }
        // α = a1..ak; prefix = a1..a_{k-1}; suffix = a2..ak; core = a2..a_{k-1}.
        let prefix = idx / 20;
        let suffix = idx % dim_k1;
        let core = prefix % dim_k2.max(1);
        let f0 = if k == 2 {
            // 0-order prediction: product of single-letter frequencies.
            f_k1[prefix] * f_k1[suffix]
        } else if f_k2[core] > 0.0 {
            f_k1[prefix] * f_k1[suffix] / f_k2[core]
        } else {
            0.0
        };
        if f0 > 0.0 {
            let a = (f - f0) / f0;
            if a != 0.0 {
                out.push((idx as u32, a as f32));
            }
        }
    }
    out
}

/// Correlation between two sorted sparse vectors:
/// `C = Σ aᵢbᵢ / sqrt(Σ aᵢ² · Σ bᵢ²)`; the Qi distance is `(1 − C) / 2`.
pub fn sparse_correlation(a: &[(u32, f32)], b: &[(u32, f32)]) -> f64 {
    let mut dot = 0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dot += a[i].1 as f64 * b[j].1 as f64;
                i += 1;
                j += 1;
            }
        }
    }
    let na: f64 = a.iter().map(|&(_, v)| (v as f64).powi(2)).sum();
    let nb: f64 = b.iter().map(|&(_, v)| (v as f64).powi(2)).sum();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb).sqrt()
}

/// The bioinformatics [`Application`].
pub struct BioApp {
    species: u64,
    k: usize,
    proteome_len: usize,
}

impl BioApp {
    /// Creates the application for a data set generated with `config`.
    pub fn new(config: &BioConfig) -> Self {
        Self {
            species: config.species,
            k: config.k,
            proteome_len: config.proteome_len,
        }
    }

    fn max_entries(&self) -> usize {
        // At most one entry per k-mer position, bounded by the dense size.
        (self.proteome_len).min(20usize.pow(self.k as u32))
    }

    fn decode_sparse(buf: &[u8]) -> Vec<(u32, f32)> {
        let n = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        let mut out = Vec::with_capacity(n);
        for e in 0..n {
            let o = 4 + e * 8;
            let key = u32::from_le_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]]);
            let val = f32::from_le_bytes([buf[o + 4], buf[o + 5], buf[o + 6], buf[o + 7]]);
            out.push((key, val));
        }
        out
    }

    fn encode_sparse(entries: &[(u32, f32)], out: &mut [u8]) -> Result<(), AppError> {
        let need = 4 + entries.len() * 8;
        if out.len() < need {
            return Err(AppError::new(
                "preprocess",
                format!("CV needs {need} bytes, slot has {}", out.len()),
            ));
        }
        out[..4].copy_from_slice(&(entries.len() as u32).to_le_bytes());
        for (e, &(key, val)) in entries.iter().enumerate() {
            let o = 4 + e * 8;
            out[o..o + 4].copy_from_slice(&key.to_le_bytes());
            out[o + 4..o + 8].copy_from_slice(&val.to_le_bytes());
        }
        Ok(())
    }
}

impl Application for BioApp {
    type Output = f64;

    fn name(&self) -> &str {
        "bioinformatics"
    }

    fn item_count(&self) -> u64 {
        self.species
    }

    fn file_for(&self, item: ItemId) -> String {
        BioDataset::key(item)
    }

    fn parsed_bytes(&self) -> usize {
        4 + self.proteome_len
    }

    fn item_bytes(&self) -> usize {
        4 + self.max_entries() * 8
    }

    fn result_bytes(&self) -> usize {
        8
    }

    fn parse(&self, item: ItemId, raw: &[u8], out: &mut [u8]) -> Result<(), AppError> {
        let text = std::str::from_utf8(raw)
            .map_err(|_| AppError::new("parse", format!("item {item}: not UTF-8")))?;
        let mut codes = Vec::with_capacity(self.proteome_len);
        let mut code_of = [255u8; 256];
        for (c, &ch) in ALPHABET.iter().enumerate() {
            code_of[ch as usize] = c as u8;
        }
        let mut saw_header = false;
        for line in text.lines() {
            if line.starts_with('>') {
                saw_header = true;
                continue;
            }
            for ch in line.bytes() {
                let code = code_of[ch as usize];
                if code == 255 {
                    return Err(AppError::new(
                        "parse",
                        format!("item {item}: invalid residue '{}'", ch as char),
                    ));
                }
                codes.push(code);
            }
        }
        if !saw_header || codes.is_empty() {
            return Err(AppError::new("parse", format!("item {item}: empty FASTA")));
        }
        if codes.len() + 4 > out.len() {
            return Err(AppError::new(
                "parse",
                format!("item {item}: sequence longer than the configured proteome length"),
            ));
        }
        out[..4].copy_from_slice(&(codes.len() as u32).to_le_bytes());
        out[4..4 + codes.len()].copy_from_slice(&codes);
        Ok(())
    }

    fn preprocess(&self, _item: ItemId, input: &[u8], out: &mut [u8]) -> Result<(), AppError> {
        let len = u32::from_le_bytes([input[0], input[1], input[2], input[3]]) as usize;
        let codes = &input[4..4 + len];
        let cv = composition_vector(codes, self.k);
        Self::encode_sparse(&cv, out)
    }

    fn compare(
        &self,
        left: (ItemId, &[u8]),
        right: (ItemId, &[u8]),
        out: &mut [u8],
    ) -> Result<(), AppError> {
        let a = Self::decode_sparse(left.1);
        let b = Self::decode_sparse(right.1);
        let corr = sparse_correlation(&a, &b);
        let distance = (1.0 - corr) / 2.0;
        out[..8].copy_from_slice(&distance.to_le_bytes());
        Ok(())
    }

    fn postprocess(&self, _pair: Pair, raw: &[u8]) -> f64 {
        f64::from_le_bytes(raw[..8].try_into().expect("8-byte result"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocket_storage::ObjectStore;

    fn cv_of(ds: &BioDataset, app: &BioApp, i: u64) -> Vec<(u32, f32)> {
        let raw = ds.store.read(&BioDataset::key(i)).unwrap();
        let mut parsed = vec![0u8; app.parsed_bytes()];
        app.parse(i, &raw, &mut parsed).unwrap();
        let mut item = vec![0u8; app.item_bytes()];
        app.preprocess(i, &parsed, &mut item).unwrap();
        BioApp::decode_sparse(&item)
    }

    fn distance(ds: &BioDataset, app: &BioApp, i: u64, j: u64) -> f64 {
        let a = cv_of(ds, app, i);
        let b = cv_of(ds, app, j);
        (1.0 - sparse_correlation(&a, &b)) / 2.0
    }

    fn small() -> (BioDataset, BioApp) {
        let config = BioConfig {
            species: 12,
            clusters: 3,
            proteome_len: 3000,
            ..Default::default()
        };
        let app = BioApp::new(&config);
        (BioDataset::generate(config), app)
    }

    #[test]
    fn fasta_roundtrip() {
        let (ds, app) = small();
        let raw = ds.store.read(&BioDataset::key(0)).unwrap();
        assert!(raw.starts_with(b">sp00000"));
        let mut parsed = vec![0u8; app.parsed_bytes()];
        app.parse(0, &raw, &mut parsed).unwrap();
        let len = u32::from_le_bytes([parsed[0], parsed[1], parsed[2], parsed[3]]) as usize;
        assert_eq!(len, 3000);
        assert!(parsed[4..4 + len].iter().all(|&c| c < 20));
    }

    #[test]
    fn parse_rejects_bad_input() {
        let (_, app) = small();
        let mut out = vec![0u8; app.parsed_bytes()];
        assert!(app.parse(0, b"no header\n", &mut out).is_err());
        assert!(app.parse(0, b">h\nACDEFGHIKLXZ\n", &mut out).is_err());
        assert!(app.parse(0, &[0xFF, 0xFE], &mut out).is_err());
    }

    #[test]
    fn composition_vector_properties() {
        let codes: Vec<u8> = (0..500).map(|i| (i * 7 % 20) as u8).collect();
        let cv = composition_vector(&codes, 3);
        assert!(!cv.is_empty());
        // Sorted, unique keys within the dense range.
        for w in cv.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert!(cv.iter().all(|&(k, _)| (k as usize) < 8000));
        // Self correlation is exactly 1 → distance 0.
        assert!((sparse_correlation(&cv, &cv) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cv_too_short_sequence_is_empty() {
        assert!(composition_vector(&[1, 2], 3).is_empty());
    }

    #[test]
    fn correlation_bounds_and_symmetry() {
        let (ds, app) = small();
        for i in 0..4u64 {
            for j in (i + 1)..4 {
                let d_ij = distance(&ds, &app, i, j);
                let d_ji = distance(&ds, &app, j, i);
                assert!((d_ij - d_ji).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&d_ij), "distance {d_ij} out of range");
            }
        }
    }

    #[test]
    fn clusters_separate_in_cv_distance() {
        let (ds, app) = small();
        let n = ds.cluster_of.len() as u64;
        let mut within = Vec::new();
        let mut between = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let d = distance(&ds, &app, i, j);
                if ds.cluster_of[i as usize] == ds.cluster_of[j as usize] {
                    within.push(d);
                } else {
                    between.push(d);
                }
            }
        }
        assert!(!within.is_empty() && !between.is_empty());
        let max_within = within.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min_between = between.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max_within < min_between,
            "CV distance must separate clusters: {max_within:.4} vs {min_between:.4}"
        );
    }

    #[test]
    fn compare_through_trait_matches_direct() {
        let (ds, app) = small();
        let a = cv_of(&ds, &app, 0);
        let b = cv_of(&ds, &app, 1);
        let mut abuf = vec![0u8; app.item_bytes()];
        let mut bbuf = vec![0u8; app.item_bytes()];
        BioApp::encode_sparse(&a, &mut abuf).unwrap();
        BioApp::encode_sparse(&b, &mut bbuf).unwrap();
        let mut result = vec![0u8; 8];
        app.compare((0, &abuf), (1, &bbuf), &mut result).unwrap();
        let via_trait = app.postprocess(Pair::new(0, 1), &result);
        let direct = (1.0 - sparse_correlation(&a, &b)) / 2.0;
        assert!((via_trait - direct).abs() < 1e-12);
    }

    #[test]
    fn vector_sparsity_is_irregular() {
        // The paper calls this workload irregular because CV sizes differ;
        // verify the synthetic data reproduces that.
        let config = BioConfig {
            species: 6,
            proteome_len: 2000,
            ..Default::default()
        };
        let app = BioApp::new(&config);
        let ds = BioDataset::generate(config);
        let sizes: Vec<usize> = (0..6).map(|i| cv_of(&ds, &app, i).len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(min != max, "expected varying CV sizes, got {sizes:?}");
    }
}
