//! Localization-microscopy particle fusion (§5.3 of the paper).
//!
//! Super-resolution localization microscopy produces *particles*: clouds of
//! fluorophore localizations (2D points), thousands per particle. The
//! template-free fusion method of Heydarian et al. performs all-to-all
//! *registration*: for each pair of particles, find the rigid transform
//! that best aligns them and report the alignment score. Scoring treats
//! each particle as a Gaussian Mixture Model (GMM); the paper's kernels
//! implement a quadratic GMM L2 metric and the Bhattacharyya distance.
//!
//! This reproduction implements both scores and a rotation-search
//! optimizer (coarse angular grid + golden-section refinement). Per-pair
//! cost is `O(evaluations × nx × ny)` and strongly data-dependent — the
//! source of this workload's extreme irregularity (Fig 7 right:
//! 564 ± 348 ms).
//!
//! Particles are stored as JSON files (`{"points": [[x, y], ...]}`) like
//! the original's simulator output; there is no GPU pre-processing stage
//! (Table 1: N/A) — parsing yields the comparable item directly.

use rocket_core::{AppError, Application, ItemId, Pair};
use rocket_stats::Xoshiro256;
use rocket_storage::MemStore;

use crate::json::Json;

/// Which similarity metric the comparison kernel optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Gaussian-mixture L2 cross-correlation (Jian & Vemuri style).
    GmmL2,
    /// Bhattacharyya coefficient approximated on the kernel densities.
    Bhattacharyya,
}

/// Synthetic particle-set configuration.
#[derive(Debug, Clone)]
pub struct MicroscopyConfig {
    /// Number of particles (the paper's n = 256).
    pub particles: u64,
    /// Number of distinct underlying structures.
    pub structures: usize,
    /// Anchor (binding-site) count per structure.
    pub anchors: usize,
    /// Minimum localizations per particle.
    pub points_min: usize,
    /// Maximum localizations per particle (paper: 1000–2000).
    pub points_max: usize,
    /// Localization-noise sigma.
    pub noise: f64,
    /// Fraction of anchors visible per particle (under-labelling).
    pub labelling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MicroscopyConfig {
    fn default() -> Self {
        Self {
            particles: 16,
            structures: 2,
            anchors: 8,
            points_min: 60,
            points_max: 120,
            noise: 0.06,
            labelling: 0.85,
            seed: 0x5C09ED,
        }
    }
}

/// A generated particle set plus ground truth.
pub struct MicroscopyDataset {
    /// Particle JSON files.
    pub store: MemStore,
    /// `structure_of[i]` = underlying structure of particle `i`.
    pub structure_of: Vec<usize>,
    /// `rotation_of[i]` = ground-truth rotation applied to particle `i`.
    pub rotation_of: Vec<f64>,
    /// The configuration used.
    pub config: MicroscopyConfig,
}

impl MicroscopyDataset {
    /// Storage key of particle `i`.
    pub fn key(i: ItemId) -> String {
        format!("particles/p{i:04}.json")
    }

    /// Generates particles: ring-like anchor structures, localizations
    /// sampled around randomly labelled anchors, random rotation per
    /// particle.
    pub fn generate(config: MicroscopyConfig) -> MicroscopyDataset {
        let mut rng = Xoshiro256::seed_from(config.seed);
        // Structures: anchor spirals. A spiral's radius grows monotonically
        // with angle, so it has no rotational symmetry — the ground-truth
        // pose of each particle is uniquely recoverable by registration.
        let structures: Vec<Vec<(f64, f64)>> = (0..config.structures)
            .map(|s| {
                let radius = 1.0 + 0.5 * s as f64;
                // Random anchor bearings on a radius spiral: no rigid
                // rotation maps the anchor set onto itself (uniform or
                // golden-angle spacing would alias poses by one anchor
                // step), so every particle's ground-truth pose is uniquely
                // recoverable.
                let mut bearings: Vec<f64> = (0..config.anchors)
                    .map(|_| rng.f64() * std::f64::consts::TAU)
                    .collect();
                bearings.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                bearings
                    .iter()
                    .enumerate()
                    .map(|(a, &phi)| {
                        let t = a as f64 / config.anchors as f64;
                        let r = radius * (0.55 + 0.9 * t);
                        (r * phi.cos(), r * phi.sin())
                    })
                    .collect()
            })
            .collect();
        let store = MemStore::new();
        let mut structure_of = Vec::new();
        let mut rotation_of = Vec::new();
        for i in 0..config.particles {
            let s = rng.below(config.structures);
            let theta = rng.f64() * std::f64::consts::TAU;
            structure_of.push(s);
            rotation_of.push(theta);
            let count = config.points_min + rng.below(config.points_max - config.points_min + 1);
            let (sin, cos) = theta.sin_cos();
            let mut points = Vec::with_capacity(count);
            // Under-labelling: each anchor visible with probability
            // `labelling` for this particle.
            let visible: Vec<bool> = (0..config.anchors)
                .map(|_| rng.chance(config.labelling))
                .collect();
            let visible_anchors: Vec<usize> = (0..config.anchors).filter(|&a| visible[a]).collect();
            for _ in 0..count {
                let &a = if visible_anchors.is_empty() {
                    &0
                } else {
                    visible_anchors
                        .get(rng.below(visible_anchors.len()))
                        .expect("non-empty")
                };
                let (ax, ay) = structures[s][a];
                let nx = ax + gaussian(&mut rng) * config.noise;
                let ny = ay + gaussian(&mut rng) * config.noise;
                // Apply the particle's pose.
                let px = cos * nx - sin * ny;
                let py = sin * nx + cos * ny;
                points.push(Json::Arr(vec![Json::Num(px), Json::Num(py)]));
            }
            let mut obj = std::collections::BTreeMap::new();
            obj.insert("points".to_string(), Json::Arr(points));
            obj.insert("particle".to_string(), Json::Num(i as f64));
            store.put(
                Self::key(i),
                Json::Obj(obj).to_string_compact().into_bytes(),
            );
        }
        MicroscopyDataset {
            store,
            structure_of,
            rotation_of,
            config,
        }
    }
}

fn gaussian(rng: &mut Xoshiro256) -> f64 {
    // Marsaglia polar, single draw.
    loop {
        let u = 2.0 * rng.f64() - 1.0;
        let v = 2.0 * rng.f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// GMM L2 cross-correlation of two point sets at bandwidth `sigma`:
/// `(1/(nx·ny)) Σᵢⱼ exp(−‖xᵢ−yⱼ‖² / (4σ²))` — the cross term of the L2
/// distance between the two kernel densities. Higher is better.
pub fn gmm_l2_score(xs: &[(f32, f32)], ys: &[(f32, f32)], sigma: f64) -> f64 {
    if xs.is_empty() || ys.is_empty() {
        return 0.0;
    }
    let inv = 1.0 / (4.0 * sigma * sigma);
    let mut total = 0.0f64;
    for &(xa, ya) in xs {
        for &(xb, yb) in ys {
            let dx = (xa - xb) as f64;
            let dy = (ya - yb) as f64;
            total += (-(dx * dx + dy * dy) * inv).exp();
        }
    }
    total / (xs.len() as f64 * ys.len() as f64)
}

/// Bhattacharyya coefficient approximated on kernel densities: evaluates
/// `√(p(z)·q(z))` over the union of both point sets as sample locations.
/// In `[0, 1]`-ish, higher is better.
pub fn bhattacharyya_score(xs: &[(f32, f32)], ys: &[(f32, f32)], sigma: f64) -> f64 {
    if xs.is_empty() || ys.is_empty() {
        return 0.0;
    }
    let density = |pts: &[(f32, f32)], z: (f64, f64)| -> f64 {
        let inv = 1.0 / (2.0 * sigma * sigma);
        let sum: f64 = pts
            .iter()
            .map(|&(x, y)| {
                let dx = x as f64 - z.0;
                let dy = y as f64 - z.1;
                (-(dx * dx + dy * dy) * inv).exp()
            })
            .sum();
        sum / pts.len() as f64
    };
    let mut acc = 0.0;
    let mut count = 0usize;
    for &(x, y) in xs.iter().chain(ys.iter()) {
        let z = (x as f64, y as f64);
        acc += (density(xs, z) * density(ys, z)).sqrt();
        count += 1;
    }
    acc / count as f64
}

/// Rotates a point set by `theta` around the origin.
pub fn rotate(points: &[(f32, f32)], theta: f64) -> Vec<(f32, f32)> {
    let (sin, cos) = theta.sin_cos();
    points
        .iter()
        .map(|&(x, y)| {
            (
                (cos * x as f64 - sin * y as f64) as f32,
                (sin * x as f64 + cos * y as f64) as f32,
            )
        })
        .collect()
}

/// Result of registering two particles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Registration {
    /// Best similarity score found.
    pub score: f64,
    /// Rotation (radians) applied to the left particle at the optimum.
    pub rotation: f64,
    /// Score evaluations performed (the irregularity driver).
    pub evaluations: u32,
}

/// Translates a point set by `t`.
pub fn translate(points: &[(f32, f32)], t: (f64, f64)) -> Vec<(f32, f32)> {
    points
        .iter()
        .map(|&(x, y)| ((x as f64 + t.0) as f32, (y as f64 + t.1) as f32))
        .collect()
}

/// Registers `xs` onto `ys` with a rigid transform (rotation +
/// translation): coarse rotation grid at an annealed bandwidth, then for
/// the most promising cells an alternation of golden-section rotation
/// refinement and EM translation updates at the target bandwidth.
///
/// Translation matters even for centred particles: anchor-occupancy
/// imbalance biases each particle's sampled centroid by `O(spread/âˆšn)`,
/// which is comparable to the kernel bandwidth — rotation-only search then
/// loses the true alignment.
pub fn register(
    xs: &[(f32, f32)],
    ys: &[(f32, f32)],
    metric: Metric,
    grid_steps: usize,
    sigma: f64,
) -> Registration {
    let center = |pts: &[(f32, f32)]| -> Vec<(f32, f32)> {
        if pts.is_empty() {
            return Vec::new();
        }
        let cx = pts.iter().map(|p| p.0 as f64).sum::<f64>() / pts.len() as f64;
        let cy = pts.iter().map(|p| p.1 as f64).sum::<f64>() / pts.len() as f64;
        pts.iter()
            .map(|&(x, y)| ((x as f64 - cx) as f32, (y as f64 - cy) as f32))
            .collect()
    };
    let xs = center(xs);
    let ys = center(ys);
    let mut evaluations = 0u32;
    let score_of = |rotated_translated: &[(f32, f32)], s: f64| -> f64 {
        match metric {
            Metric::GmmL2 => gmm_l2_score(rotated_translated, &ys, s),
            Metric::Bhattacharyya => bhattacharyya_score(rotated_translated, &ys, s),
        }
    };
    /// One EM update of the translation aligning `moved` onto `ys`.
    fn em_step(moved: &[(f32, f32)], ys: &[(f32, f32)], sigma: f64) -> (f64, f64) {
        let inv = 1.0 / (4.0 * sigma * sigma);
        let (mut sw, mut sx, mut sy) = (0.0f64, 0.0f64, 0.0f64);
        for &(xa, ya) in moved {
            for &(xb, yb) in ys {
                let dx = xb as f64 - xa as f64;
                let dy = yb as f64 - ya as f64;
                let w = (-(dx * dx + dy * dy) * inv).exp();
                sw += w;
                sx += w * dx;
                sy += w * dy;
            }
        }
        if sw > 0.0 {
            (sx / sw, sy / sw)
        } else {
            (0.0, 0.0)
        }
    }

    let tau = std::f64::consts::TAU;
    let steps = grid_steps.max(1);
    let spread = if xs.is_empty() {
        1.0
    } else {
        (xs.iter()
            .map(|p| (p.0 as f64).hypot(p.1 as f64))
            .sum::<f64>()
            / xs.len() as f64)
            .max(1e-6)
    };
    // Annealed bandwidth: the rotation basin (≈ sigma/spread radians) must
    // span at least one grid cell for the coarse search to see it.
    let sigma_coarse = sigma.max(tau / steps as f64 * spread);
    let mut grid: Vec<(f64, f64)> = Vec::with_capacity(steps);
    for step in 0..steps {
        let theta = step as f64 / steps as f64 * tau;
        evaluations += 1;
        grid.push((score_of(&rotate(&xs, theta), sigma_coarse), theta));
    }
    grid.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));

    let cell = tau / steps as f64;
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let mut best = Registration {
        score: f64::NEG_INFINITY,
        rotation: 0.0,
        evaluations: 0,
    };
    for &(_, seed_theta) in grid.iter().take(3) {
        // Alternate translation EM and golden-section rotation refinement.
        let mut t = (0.0f64, 0.0f64);
        let mut theta = seed_theta;
        for _round in 0..2 {
            // Translation EM at the annealed then target bandwidth.
            for s in [sigma_coarse, sigma] {
                let moved = translate(&rotate(&xs, theta), t);
                evaluations += 1;
                let dt = em_step(&moved, &ys, s);
                t.0 += dt.0;
                t.1 += dt.1;
            }
            // Rotation refinement at fixed translation.
            let (mut lo, mut hi) = (theta - cell, theta + cell);
            for _ in 0..10 {
                let m1 = hi - phi * (hi - lo);
                let m2 = lo + phi * (hi - lo);
                evaluations += 2;
                let s1 = score_of(&translate(&rotate(&xs, m1), t), sigma);
                let s2 = score_of(&translate(&rotate(&xs, m2), t), sigma);
                if s1 >= s2 {
                    hi = m2;
                } else {
                    lo = m1;
                }
            }
            theta = (lo + hi) / 2.0;
        }
        evaluations += 1;
        let score = score_of(&translate(&rotate(&xs, theta), t), sigma);
        if score > best.score {
            best = Registration {
                score,
                rotation: theta.rem_euclid(tau),
                evaluations: 0,
            };
        }
    }
    best.evaluations = evaluations;
    best
}

/// The microscopy [`Application`].
pub struct MicroscopyApp {
    particles: u64,
    max_points: usize,
    metric: Metric,
    grid_steps: usize,
    sigma: f64,
}

impl MicroscopyApp {
    /// Creates the application for a data set generated with `config`.
    pub fn new(config: &MicroscopyConfig) -> Self {
        Self {
            particles: config.particles,
            max_points: config.points_max,
            metric: Metric::GmmL2,
            grid_steps: 24,
            sigma: 2.0 * config.noise,
        }
    }

    /// Switches the similarity metric.
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    fn decode_points(buf: &[u8]) -> Vec<(f32, f32)> {
        let n = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        let mut out = Vec::with_capacity(n);
        for p in 0..n {
            let o = 4 + p * 8;
            let x = f32::from_le_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]]);
            let y = f32::from_le_bytes([buf[o + 4], buf[o + 5], buf[o + 6], buf[o + 7]]);
            out.push((x, y));
        }
        out
    }
}

impl Application for MicroscopyApp {
    type Output = Registration;

    fn name(&self) -> &str {
        "microscopy"
    }

    fn item_count(&self) -> u64 {
        self.particles
    }

    fn file_for(&self, item: ItemId) -> String {
        MicroscopyDataset::key(item)
    }

    fn parsed_bytes(&self) -> usize {
        4 + self.max_points * 8
    }

    fn item_bytes(&self) -> usize {
        self.parsed_bytes()
    }

    fn result_bytes(&self) -> usize {
        8 + 8 + 4
    }

    fn has_preprocess(&self) -> bool {
        false
    }

    fn parse(&self, item: ItemId, raw: &[u8], out: &mut [u8]) -> Result<(), AppError> {
        let text = std::str::from_utf8(raw)
            .map_err(|_| AppError::new("parse", format!("particle {item}: not UTF-8")))?;
        let doc = Json::parse(text)
            .map_err(|e| AppError::new("parse", format!("particle {item}: {e}")))?;
        let points = doc
            .get("points")
            .and_then(Json::as_arr)
            .ok_or_else(|| AppError::new("parse", format!("particle {item}: no points array")))?;
        if points.len() > self.max_points {
            return Err(AppError::new(
                "parse",
                format!(
                    "particle {item}: {} points exceeds max {}",
                    points.len(),
                    self.max_points
                ),
            ));
        }
        out[..4].copy_from_slice(&(points.len() as u32).to_le_bytes());
        for (p, pt) in points.iter().enumerate() {
            let coords = pt
                .as_arr()
                .filter(|c| c.len() == 2)
                .ok_or_else(|| AppError::new("parse", format!("particle {item}: bad point {p}")))?;
            let x = coords[0]
                .as_f64()
                .ok_or_else(|| AppError::new("parse", format!("particle {item}: non-numeric x")))?
                as f32;
            let y = coords[1]
                .as_f64()
                .ok_or_else(|| AppError::new("parse", format!("particle {item}: non-numeric y")))?
                as f32;
            let o = 4 + p * 8;
            out[o..o + 4].copy_from_slice(&x.to_le_bytes());
            out[o + 4..o + 8].copy_from_slice(&y.to_le_bytes());
        }
        Ok(())
    }

    fn compare(
        &self,
        left: (ItemId, &[u8]),
        right: (ItemId, &[u8]),
        out: &mut [u8],
    ) -> Result<(), AppError> {
        let xs = Self::decode_points(left.1);
        let ys = Self::decode_points(right.1);
        let reg = register(&xs, &ys, self.metric, self.grid_steps, self.sigma);
        out[..8].copy_from_slice(&reg.score.to_le_bytes());
        out[8..16].copy_from_slice(&reg.rotation.to_le_bytes());
        out[16..20].copy_from_slice(&reg.evaluations.to_le_bytes());
        Ok(())
    }

    fn postprocess(&self, _pair: Pair, raw: &[u8]) -> Registration {
        Registration {
            score: f64::from_le_bytes(raw[..8].try_into().expect("score")),
            rotation: f64::from_le_bytes(raw[8..16].try_into().expect("rotation")),
            evaluations: u32::from_le_bytes(raw[16..20].try_into().expect("evaluations")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocket_storage::ObjectStore;

    fn points_of(ds: &MicroscopyDataset, app: &MicroscopyApp, i: u64) -> Vec<(f32, f32)> {
        let raw = ds.store.read(&MicroscopyDataset::key(i)).unwrap();
        let mut parsed = vec![0u8; app.parsed_bytes()];
        app.parse(i, &raw, &mut parsed).unwrap();
        MicroscopyApp::decode_points(&parsed)
    }

    fn small() -> (MicroscopyDataset, MicroscopyApp) {
        let config = MicroscopyConfig {
            particles: 8,
            ..Default::default()
        };
        let app = MicroscopyApp::new(&config);
        (MicroscopyDataset::generate(config), app)
    }

    #[test]
    fn json_files_parse_back() {
        let (ds, app) = small();
        for i in 0..4 {
            let pts = points_of(&ds, &app, i);
            assert!(pts.len() >= ds.config.points_min);
            assert!(pts.len() <= ds.config.points_max);
        }
    }

    #[test]
    fn gmm_score_peaks_at_identity() {
        let pts: Vec<(f32, f32)> = (0..40)
            .map(|i| ((i as f32 * 0.7).sin() * 2.0, (i as f32 * 1.3).cos() * 2.0))
            .collect();
        let self_score = gmm_l2_score(&pts, &pts, 0.1);
        let rotated = rotate(&pts, 1.0);
        let off_score = gmm_l2_score(&rotated, &pts, 0.1);
        assert!(self_score > off_score, "{self_score} vs {off_score}");
    }

    #[test]
    fn scores_are_symmetric() {
        let a: Vec<(f32, f32)> = (0..20)
            .map(|i| (i as f32 * 0.3, (i as f32 * 0.11).sin()))
            .collect();
        let b: Vec<(f32, f32)> = (0..25)
            .map(|i| ((i as f32 * 0.21).cos(), i as f32 * 0.2))
            .collect();
        for sigma in [0.05, 0.2] {
            assert!((gmm_l2_score(&a, &b, sigma) - gmm_l2_score(&b, &a, sigma)).abs() < 1e-12);
            assert!(
                (bhattacharyya_score(&a, &b, sigma) - bhattacharyya_score(&b, &a, sigma)).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn register_recovers_known_rotation() {
        // Fully labelled, low-noise particles: registration must recover
        // the ground-truth pose. (With heavy under-labelling individual
        // registrations can genuinely fail — that is the very motivation
        // for all-to-all fusion in Heydarian et al. — so this test pins
        // the well-posed case.)
        let config = MicroscopyConfig {
            particles: 8,
            labelling: 1.0,
            noise: 0.03,
            points_min: 100,
            points_max: 160,
            ..Default::default()
        };
        let app = MicroscopyApp::new(&config);
        let ds = MicroscopyDataset::generate(config);
        // Particle pairs from the same structure: registration must find a
        // rotation close to the ground-truth relative rotation.
        let mut checked = 0;
        let n = ds.structure_of.len();
        for i in 0..n {
            for j in (i + 1)..n {
                if ds.structure_of[i] != ds.structure_of[j] {
                    continue;
                }
                let xs = points_of(&ds, &app, i as u64);
                let ys = points_of(&ds, &app, j as u64);
                let reg = register(&xs, &ys, Metric::GmmL2, 36, app.sigma);
                let expected =
                    (ds.rotation_of[j] - ds.rotation_of[i]).rem_euclid(std::f64::consts::TAU);
                let mut err = (reg.rotation - expected).abs();
                err = err.min(std::f64::consts::TAU - err);
                assert!(
                    err < 0.3,
                    "pair ({i},{j}): recovered {:.3}, expected {expected:.3}",
                    reg.rotation
                );
                checked += 1;
                if checked >= 3 {
                    return;
                }
            }
        }
        assert!(checked > 0, "no same-structure pairs generated");
    }

    #[test]
    fn same_structure_scores_higher() {
        let (ds, app) = small();
        let n = ds.structure_of.len();
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let xs = points_of(&ds, &app, i as u64);
                let ys = points_of(&ds, &app, j as u64);
                let reg = register(&xs, &ys, Metric::GmmL2, 24, app.sigma);
                if ds.structure_of[i] == ds.structure_of[j] {
                    same.push(reg.score);
                } else {
                    diff.push(reg.score);
                }
            }
        }
        assert!(!same.is_empty() && !diff.is_empty());
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&same) > avg(&diff),
            "same-structure mean {:.4} must beat different {:.4}",
            avg(&same),
            avg(&diff)
        );
    }

    #[test]
    fn compare_through_trait_roundtrips() {
        let (ds, app) = small();
        let raw0 = ds.store.read(&MicroscopyDataset::key(0)).unwrap();
        let raw1 = ds.store.read(&MicroscopyDataset::key(1)).unwrap();
        let mut a = vec![0u8; app.item_bytes()];
        let mut b = vec![0u8; app.item_bytes()];
        app.parse(0, &raw0, &mut a).unwrap();
        app.parse(1, &raw1, &mut b).unwrap();
        let mut result = vec![0u8; app.result_bytes()];
        app.compare((0, &a), (1, &b), &mut result).unwrap();
        let reg = app.postprocess(Pair::new(0, 1), &result);
        assert!(reg.score.is_finite());
        assert!((0.0..std::f64::consts::TAU).contains(&reg.rotation));
        assert!(reg.evaluations > 24);
    }

    #[test]
    fn parse_rejects_bad_json() {
        let (_, app) = small();
        let mut out = vec![0u8; app.parsed_bytes()];
        assert!(app.parse(0, b"not json", &mut out).is_err());
        assert!(app.parse(0, b"{\"nopoints\": 1}", &mut out).is_err());
        assert!(app.parse(0, b"{\"points\": [[1]]}", &mut out).is_err());
        assert!(app
            .parse(0, b"{\"points\": [[1, \"x\"]]}", &mut out)
            .is_err());
    }

    #[test]
    fn bhattacharyya_metric_also_discriminates() {
        let pts: Vec<(f32, f32)> = (0..30)
            .map(|i| {
                let phi = i as f32 / 30.0 * std::f32::consts::TAU;
                (phi.cos() * (1.0 + 0.3 * (2.0 * phi).sin()), phi.sin())
            })
            .collect();
        let self_score = bhattacharyya_score(&pts, &pts, 0.1);
        let other: Vec<(f32, f32)> = pts.iter().map(|&(x, y)| (x * 2.0, y * 0.5)).collect();
        let cross = bhattacharyya_score(&pts, &other, 0.1);
        assert!(self_score > cross);
    }

    #[test]
    fn workload_is_irregular() {
        // Evaluation counts (and thus run times) vary pair to pair.
        let (ds, app) = small();
        let mut counts = std::collections::HashSet::new();
        for j in 1..5u64 {
            let xs = points_of(&ds, &app, 0);
            let ys = points_of(&ds, &app, j);
            counts.insert(xs.len() * ys.len());
        }
        assert!(
            counts.len() > 1,
            "point-count products identical: {counts:?}"
        );
    }
}
