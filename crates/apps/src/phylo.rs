//! Hierarchical clustering of distance matrices into phylogenetic trees.
//!
//! The bioinformatics application's final step (§5.2: "hierarchical
//! clustering of the distance matrix between all species"). Two standard
//! algorithms are provided: UPGMA (average linkage) and Neighbor Joining
//! (the usual choice for CV phylogenies). Both consume the condensed
//! distance matrix produced by the all-pairs run.

/// A rooted binary merge tree. Leaves are `0..n`; internal node `n + k` is
/// created by the k-th merge.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    /// Number of leaves.
    pub leaves: usize,
    /// Merges in creation order; `merges[k]` creates node `leaves + k`.
    pub merges: Vec<Merge>,
}

/// One agglomeration step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First child node id.
    pub a: usize,
    /// Second child node id.
    pub b: usize,
    /// Height (cophenetic distance) at which the children join.
    pub height: f64,
}

impl Tree {
    /// The root node id (panics on an empty tree with ≥2 leaves unmerged).
    pub fn root(&self) -> usize {
        assert!(!self.merges.is_empty() || self.leaves == 1);
        if self.leaves == 1 {
            0
        } else {
            self.leaves + self.merges.len() - 1
        }
    }

    /// The leaf ids under `node`, sorted.
    pub fn leaves_under(&self, node: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            if n < self.leaves {
                out.push(n);
            } else {
                let m = self.merges[n - self.leaves];
                stack.push(m.a);
                stack.push(m.b);
            }
        }
        out.sort_unstable();
        out
    }

    /// Newick serialization (heights as branch annotations omitted for
    /// leaves; internal nodes carry their merge height).
    pub fn to_newick(&self, names: &dyn Fn(usize) -> String) -> String {
        fn rec(tree: &Tree, node: usize, names: &dyn Fn(usize) -> String, out: &mut String) {
            if node < tree.leaves {
                out.push_str(&names(node));
            } else {
                let m = tree.merges[node - tree.leaves];
                out.push('(');
                rec(tree, m.a, names, out);
                out.push(',');
                rec(tree, m.b, names, out);
                out.push(')');
                out.push_str(&format!(":{:.4}", m.height));
            }
        }
        let mut s = String::new();
        rec(self, self.root(), names, &mut s);
        s.push(';');
        s
    }
}

/// Index into a condensed upper-triangle distance vector for `i < j < n`.
pub fn condensed_index(n: usize, i: usize, j: usize) -> usize {
    assert!(i < j && j < n);
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// UPGMA (average-linkage) clustering of a condensed distance matrix
/// (`dist[condensed_index(n, i, j)]`, length `n(n−1)/2`).
pub fn upgma(n: usize, dist: &[f64]) -> Tree {
    assert!(n >= 1);
    assert_eq!(dist.len(), n * (n - 1) / 2, "condensed matrix size");
    // Active cluster list: (node id, member count). Distances kept in a
    // mutable working copy between active clusters, indexed by position.
    let mut nodes: Vec<(usize, usize)> = (0..n).map(|i| (i, 1)).collect();
    let mut d: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    if i == j {
                        0.0
                    } else {
                        dist[condensed_index(n, i.min(j), i.max(j))]
                    }
                })
                .collect()
        })
        .collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    while nodes.len() > 1 {
        // Find the closest active pair.
        let (mut bi, mut bj, mut best) = (0usize, 1usize, f64::INFINITY);
        for (i, row) in d.iter().enumerate().take(nodes.len()) {
            for (j, &dij) in row.iter().enumerate().take(nodes.len()).skip(i + 1) {
                if dij < best {
                    (bi, bj, best) = (i, j, dij);
                }
            }
        }
        let (ida, ca) = nodes[bi];
        let (idb, cb) = nodes[bj];
        let new_id = n + merges.len();
        merges.push(Merge {
            a: ida,
            b: idb,
            height: best / 2.0,
        });
        // UPGMA update: weighted average of the merged rows.
        let mut new_row: Vec<f64> = Vec::with_capacity(nodes.len() - 1);
        for (k, (&da, &db)) in d[bi].iter().zip(&d[bj]).enumerate().take(nodes.len()) {
            if k == bi || k == bj {
                continue;
            }
            new_row.push((da * ca as f64 + db * cb as f64) / (ca + cb) as f64);
        }
        // Remove bj then bi (bj > bi) from both axes, then append the row.
        for row in &mut d {
            row.remove(bj);
            row.remove(bi);
        }
        d.remove(bj);
        d.remove(bi);
        nodes.remove(bj);
        nodes.remove(bi);
        for (k, row) in d.iter_mut().enumerate() {
            row.push(new_row[k]);
        }
        new_row.push(0.0);
        d.push(new_row);
        nodes.push((new_id, ca + cb));
    }
    Tree { leaves: n, merges }
}

/// Neighbor Joining of a condensed distance matrix. Returns a rooted tree
/// (the final join acts as the root), with Q-criterion joins.
pub fn neighbor_joining(n: usize, dist: &[f64]) -> Tree {
    assert!(n >= 1);
    assert_eq!(dist.len(), n * (n - 1) / 2, "condensed matrix size");
    if n == 1 {
        return Tree {
            leaves: 1,
            merges: Vec::new(),
        };
    }
    let mut nodes: Vec<usize> = (0..n).collect();
    let mut d: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    if i == j {
                        0.0
                    } else {
                        dist[condensed_index(n, i.min(j), i.max(j))]
                    }
                })
                .collect()
        })
        .collect();
    let mut merges = Vec::with_capacity(n - 1);
    while nodes.len() > 2 {
        let m = nodes.len();
        let row_sums: Vec<f64> = (0..m).map(|i| d[i].iter().sum()).collect();
        let (mut bi, mut bj, mut best) = (0usize, 1usize, f64::INFINITY);
        for i in 0..m {
            for j in (i + 1)..m {
                let q = (m as f64 - 2.0) * d[i][j] - row_sums[i] - row_sums[j];
                if q < best {
                    (bi, bj, best) = (i, j, q);
                }
            }
        }
        let new_id = n + merges.len();
        merges.push(Merge {
            a: nodes[bi],
            b: nodes[bj],
            height: d[bi][bj] / 2.0,
        });
        // Distance from the new node to the rest.
        let mut new_row: Vec<f64> = Vec::with_capacity(m - 1);
        for k in 0..m {
            if k == bi || k == bj {
                continue;
            }
            new_row.push(0.5 * (d[bi][k] + d[bj][k] - d[bi][bj]));
        }
        for row in &mut d {
            row.remove(bj);
            row.remove(bi);
        }
        d.remove(bj);
        d.remove(bi);
        nodes.remove(bj);
        nodes.remove(bi);
        for (k, row) in d.iter_mut().enumerate() {
            row.push(new_row[k]);
        }
        new_row.push(0.0);
        d.push(new_row);
        nodes.push(new_id);
    }
    if nodes.len() == 2 {
        merges.push(Merge {
            a: nodes[0],
            b: nodes[1],
            height: d[0][1] / 2.0,
        });
    }
    Tree { leaves: n, merges }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Condensed matrix helper.
    fn condensed(n: usize, f: impl Fn(usize, usize) -> f64) -> Vec<f64> {
        let mut v = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                v.push(f(i, j));
            }
        }
        v
    }

    #[test]
    fn condensed_index_is_dense_and_ordered() {
        let n = 7;
        let mut seen = vec![false; n * (n - 1) / 2];
        for i in 0..n {
            for j in (i + 1)..n {
                let idx = condensed_index(n, i, j);
                assert!(!seen[idx]);
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn upgma_textbook_example() {
        // Classic 4-taxon example: a,b close; c,d close; groups far apart.
        let d = condensed(4, |i, j| match (i, j) {
            (0, 1) => 2.0,
            (2, 3) => 2.0,
            _ => 8.0,
        });
        let tree = upgma(4, &d);
        assert_eq!(tree.merges.len(), 3);
        // First two merges join {0,1} and {2,3} at height 1.
        let first_two: Vec<Vec<usize>> = (0..2).map(|k| tree.leaves_under(4 + k)).collect();
        assert!(first_two.contains(&vec![0, 1]));
        assert!(first_two.contains(&vec![2, 3]));
        assert!((tree.merges[0].height - 1.0).abs() < 1e-12);
        assert!((tree.merges[2].height - 4.0).abs() < 1e-12);
        assert_eq!(tree.leaves_under(tree.root()), vec![0, 1, 2, 3]);
    }

    #[test]
    fn upgma_single_and_pair() {
        let t1 = upgma(1, &[]);
        assert_eq!(t1.root(), 0);
        let t2 = upgma(2, &[3.0]);
        assert_eq!(t2.merges.len(), 1);
        assert!((t2.merges[0].height - 1.5).abs() < 1e-12);
    }

    #[test]
    fn nj_recovers_additive_tree_structure() {
        // Additive tree: ((0,1),(2,3)) with internal edge. Distances:
        // d(0,1)=2, d(2,3)=2, cross pairs = 6.
        let d = condensed(4, |i, j| match (i, j) {
            (0, 1) => 2.0,
            (2, 3) => 2.0,
            _ => 6.0,
        });
        let tree = neighbor_joining(4, &d);
        assert_eq!(tree.merges.len(), 3);
        let groups: Vec<Vec<usize>> = (0..2).map(|k| tree.leaves_under(4 + k)).collect();
        assert!(groups.contains(&vec![0, 1]) || groups.contains(&vec![2, 3]));
        assert_eq!(tree.leaves_under(tree.root()), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cluster_monophyly_from_noisy_distances() {
        // 9 leaves in 3 clusters with noisy within/between distances.
        let cluster = |x: usize| x / 3;
        let d = condensed(9, |i, j| {
            let base = if cluster(i) == cluster(j) { 0.1 } else { 1.0 };
            // Deterministic jitter.
            base + 0.01 * ((i * 7 + j * 13) % 10) as f64
        });
        for (rooted, tree) in [(true, upgma(9, &d)), (false, neighbor_joining(9, &d))] {
            // Some internal node must contain exactly each cluster. NJ
            // trees are unrooted (our root is just the final join), so a
            // cluster may also appear as the complement of a clade.
            for c in 0..3 {
                let want: Vec<usize> = (3 * c..3 * c + 3).collect();
                let complement: Vec<usize> = (0..9).filter(|l| !want.contains(l)).collect();
                let found = (tree.leaves..tree.leaves + tree.merges.len()).any(|n| {
                    let under = tree.leaves_under(n);
                    under == want || (!rooted && under == complement)
                });
                assert!(found, "cluster {c} not monophyletic in {tree:?}");
            }
        }
    }

    #[test]
    fn newick_output_is_wellformed() {
        let d = condensed(3, |_, _| 1.0);
        let tree = upgma(3, &d);
        let newick = tree.to_newick(&|i| format!("sp{i}"));
        assert!(newick.ends_with(';'));
        assert_eq!(newick.matches('(').count(), 2);
        assert!(newick.contains("sp0"));
        assert!(newick.contains("sp2"));
    }

    #[test]
    fn heights_monotone_for_upgma() {
        let d = condensed(6, |i, j| ((i + 1) * (j + 2) % 7 + 1) as f64);
        let tree = upgma(6, &d);
        for w in tree.merges.windows(2) {
            assert!(
                w[0].height <= w[1].height + 1e-12,
                "UPGMA heights must be monotone"
            );
        }
    }
}
