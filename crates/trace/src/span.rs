//! Trace span and task classification types.

use std::fmt;

/// The resource class a traced thread belongs to (§4.3: Rocket launches one
/// thread type per resource so tasks on different threads never interfere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ThreadClass {
    /// CPU worker pool (parsing, post-processing).
    Cpu,
    /// Per-GPU kernel-launch thread.
    Gpu,
    /// Per-GPU host-to-device transfer thread.
    CpuToGpu,
    /// Per-GPU device-to-host transfer thread.
    GpuToCpu,
    /// (Remote) file-system I/O thread.
    Io,
    /// Scheduler / work-stealing activity.
    Scheduler,
}

impl ThreadClass {
    /// All classes in the order the paper's Fig 8 presents them.
    pub const ALL: [ThreadClass; 6] = [
        ThreadClass::Gpu,
        ThreadClass::Cpu,
        ThreadClass::CpuToGpu,
        ThreadClass::GpuToCpu,
        ThreadClass::Io,
        ThreadClass::Scheduler,
    ];

    /// The label used in figures (matches the paper's x-axis).
    pub fn label(self) -> &'static str {
        match self {
            ThreadClass::Cpu => "CPU",
            ThreadClass::Gpu => "GPU",
            ThreadClass::CpuToGpu => "CPU→GPU",
            ThreadClass::GpuToCpu => "GPU→CPU",
            ThreadClass::Io => "IO",
            ThreadClass::Scheduler => "SCHED",
        }
    }
}

impl fmt::Display for ThreadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What a traced task was doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaskKind {
    /// Reading a file from (remote) storage.
    Read,
    /// User-defined parse stage on the CPU.
    Parse,
    /// User-defined pre-processing kernel on the GPU.
    Preprocess,
    /// User-defined comparison kernel on the GPU.
    Compare,
    /// Host-to-device buffer copy.
    CopyIn,
    /// Device-to-host buffer copy.
    CopyOut,
    /// User-defined post-processing on the CPU.
    Postprocess,
    /// Fetching an item from a remote node's host cache (level 3).
    RemoteFetch,
    /// Serving an item to a remote node.
    RemoteServe,
    /// Work-stealing / task management overhead.
    Steal,
}

impl TaskKind {
    /// Short label used in trace exports.
    pub fn label(self) -> &'static str {
        match self {
            TaskKind::Read => "read",
            TaskKind::Parse => "parse",
            TaskKind::Preprocess => "preprocess",
            TaskKind::Compare => "compare",
            TaskKind::CopyIn => "copy_in",
            TaskKind::CopyOut => "copy_out",
            TaskKind::Postprocess => "postprocess",
            TaskKind::RemoteFetch => "remote_fetch",
            TaskKind::RemoteServe => "remote_serve",
            TaskKind::Steal => "steal",
        }
    }
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One executed task on one thread: a closed interval on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Which resource class executed the task.
    pub class: ThreadClass,
    /// Identifier of the thread within its class (e.g. GPU index).
    pub lane: u32,
    /// What the task was.
    pub kind: TaskKind,
    /// Start time in nanoseconds since run start.
    pub start_ns: u64,
    /// End time in nanoseconds since run start (≥ `start_ns`).
    pub end_ns: u64,
    /// Optional item / pair tag (e.g. item index) for debugging.
    pub tag: u64,
}

impl Span {
    /// Duration of the span in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(ThreadClass::CpuToGpu.label(), "CPU→GPU");
        assert_eq!(TaskKind::Compare.label(), "compare");
    }

    #[test]
    fn duration_computation() {
        let s = Span {
            class: ThreadClass::Gpu,
            lane: 0,
            kind: TaskKind::Compare,
            start_ns: 100,
            end_ns: 350,
            tag: 7,
        };
        assert_eq!(s.duration_ns(), 250);
    }

    #[test]
    fn all_classes_unique_labels() {
        let labels: Vec<&str> = ThreadClass::ALL.iter().map(|c| c.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
