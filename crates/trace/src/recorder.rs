//! Thread-safe span recorder.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::span::{Span, TaskKind, ThreadClass};

/// Collects [`Span`]s from many threads.
///
/// Recording is gated by an atomic enable flag (the paper's "optional
/// profiling flag"); when disabled, `record` is a single relaxed load.
/// Spans are buffered in per-call locked pushes — tracing granularity in
/// Rocket is per *task* (milliseconds), so contention is negligible.
#[derive(Debug)]
pub struct TraceRecorder {
    enabled: AtomicBool,
    spans: Mutex<Vec<Span>>,
    epoch: Instant,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new(true)
    }
}

impl TraceRecorder {
    /// Creates a recorder; `enabled` controls whether spans are kept.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled: AtomicBool::new(enabled),
            spans: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        }
    }

    /// A shared, enabled recorder.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new(true))
    }

    /// A shared, disabled recorder (no-op sink).
    pub fn disabled() -> Arc<Self> {
        Arc::new(Self::new(false))
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables recording.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds since the recorder was created (wall-clock runs).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records a span with explicit timestamps (used by the simulator, which
    /// supplies virtual time).
    pub fn record(&self, span: Span) {
        if self.is_enabled() {
            self.spans.lock().push(span);
        }
    }

    /// Records a task that ran from `start_ns` until now (wall-clock runs).
    pub fn record_since(
        &self,
        class: ThreadClass,
        lane: u32,
        kind: TaskKind,
        start_ns: u64,
        tag: u64,
    ) {
        if self.is_enabled() {
            let end_ns = self.now_ns().max(start_ns);
            self.record(Span {
                class,
                lane,
                kind,
                start_ns,
                end_ns,
                tag,
            });
        }
    }

    /// Runs `f`, recording it as a span of the given kind (wall-clock runs).
    pub fn scope<T>(
        &self,
        class: ThreadClass,
        lane: u32,
        kind: TaskKind,
        tag: u64,
        f: impl FnOnce() -> T,
    ) -> T {
        if !self.is_enabled() {
            return f();
        }
        let start = self.now_ns();
        let out = f();
        self.record_since(class, lane, kind, start, tag);
        out
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes all recorded spans, leaving the recorder empty.
    pub fn take(&self) -> Vec<Span> {
        std::mem::take(&mut *self.spans.lock())
    }

    /// Clones the recorded spans.
    pub fn snapshot(&self) -> Vec<Span> {
        self.spans.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn records_when_enabled() {
        let rec = TraceRecorder::new(true);
        rec.record(Span {
            class: ThreadClass::Io,
            lane: 0,
            kind: TaskKind::Read,
            start_ns: 0,
            end_ns: 10,
            tag: 1,
        });
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn ignores_when_disabled() {
        let rec = TraceRecorder::new(false);
        rec.record(Span {
            class: ThreadClass::Io,
            lane: 0,
            kind: TaskKind::Read,
            start_ns: 0,
            end_ns: 10,
            tag: 1,
        });
        assert!(rec.is_empty());
        rec.set_enabled(true);
        rec.scope(ThreadClass::Cpu, 0, TaskKind::Parse, 2, || ());
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn scope_returns_value_and_measures() {
        let rec = TraceRecorder::new(true);
        let v = rec.scope(ThreadClass::Cpu, 3, TaskKind::Parse, 9, || 42);
        assert_eq!(v, 42);
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].lane, 3);
        assert_eq!(spans[0].tag, 9);
        assert!(spans[0].end_ns >= spans[0].start_ns);
    }

    #[test]
    fn take_drains() {
        let rec = TraceRecorder::new(true);
        rec.scope(ThreadClass::Gpu, 0, TaskKind::Compare, 0, || ());
        assert_eq!(rec.take().len(), 1);
        assert!(rec.is_empty());
    }

    #[test]
    fn concurrent_recording() {
        let rec = Arc::new(TraceRecorder::new(true));
        let mut handles = Vec::new();
        for t in 0..4 {
            let rec = Arc::clone(&rec);
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    rec.record(Span {
                        class: ThreadClass::Cpu,
                        lane: t,
                        kind: TaskKind::Parse,
                        start_ns: i,
                        end_ns: i + 1,
                        tag: 0,
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.len(), 400);
    }
}
