//! Chrome-trace (`about:tracing` / Perfetto) JSON export.
//!
//! The writer is hand-rolled: the format is a flat array of complete events
//! (`"ph": "X"`) and needs no general-purpose JSON dependency. Durations are
//! exported in microseconds as the format requires.

use std::fmt::Write as _;

use crate::span::Span;

/// Serializes spans into Chrome trace-event JSON.
///
/// Thread classes become trace "processes" and lanes become "threads", which
/// renders each resource on its own row exactly like the paper's Fig 6.
pub fn to_chrome_json(spans: &[Span]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("[\n");
    for (i, s) in spans.iter().enumerate() {
        let comma = if i + 1 == spans.len() { "" } else { "," };
        // Escape-free by construction: labels are static ASCII identifiers.
        let _ = writeln!(
            out,
            "  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":\"{}\",\"tid\":{},\"args\":{{\"tag\":{}}}}}{}",
            s.kind.label(),
            s.class.label(),
            s.start_ns / 1_000,
            (s.duration_ns() / 1_000).max(1),
            s.class.label(),
            s.lane,
            s.tag,
            comma
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{TaskKind, ThreadClass};

    fn sample_spans() -> Vec<Span> {
        vec![
            Span {
                class: ThreadClass::Gpu,
                lane: 0,
                kind: TaskKind::Compare,
                start_ns: 1_000,
                end_ns: 3_000,
                tag: 5,
            },
            Span {
                class: ThreadClass::Io,
                lane: 0,
                kind: TaskKind::Read,
                start_ns: 0,
                end_ns: 10_000,
                tag: 6,
            },
        ]
    }

    #[test]
    fn emits_array_with_one_object_per_span() {
        let json = to_chrome_json(&sample_spans());
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"name\":\"compare\""));
        assert!(json.contains("\"pid\":\"IO\""));
    }

    #[test]
    fn durations_in_microseconds() {
        let json = to_chrome_json(&sample_spans());
        assert!(json.contains("\"ts\":1,\"dur\":2"));
        assert!(json.contains("\"ts\":0,\"dur\":10"));
    }

    #[test]
    fn zero_duration_clamped_to_one_us() {
        let spans = vec![Span {
            class: ThreadClass::Cpu,
            lane: 0,
            kind: TaskKind::Parse,
            start_ns: 0,
            end_ns: 0,
            tag: 0,
        }];
        let json = to_chrome_json(&spans);
        assert!(json.contains("\"dur\":1"));
    }

    #[test]
    fn empty_trace_is_valid_array() {
        assert_eq!(to_chrome_json(&[]), "[\n]");
    }

    #[test]
    fn no_trailing_comma() {
        let json = to_chrome_json(&sample_spans());
        assert!(!json.contains(",\n]"));
    }
}
