//! Structured performance logs: per-stage / per-resource samples behind a
//! near-zero-cost-when-disabled handle.
//!
//! Where [`crate::chrome`] renders spans for a human in a trace viewer,
//! the perf log is the *machine-queryable* side of observability: flat
//! [`PerfRecord`]s (timestamp, kind, node, value) recorded during a run,
//! written as versioned JSONL, and rolled up through [`PerfQuery`] /
//! [`PerfRollup`] into p50/p99 stage latencies and event rates that
//! studies and CI gates can compare across commits.
//!
//! Three invariants the rest of the workspace relies on:
//!
//! * **Disabled is (nearly) free.** A disabled [`PerfLog`] is a `None`;
//!   every record site is one branch. Engines thread the handle through
//!   and never pay allocation or locking unless a caller opted in.
//! * **Recording never changes results.** The handle is write-only during
//!   a run; engines buffer records out-of-band and fold them after the
//!   result is final (`crates/sim` pins `SimResult` byte-equality with
//!   logging on).
//! * **Determinism.** Rollups use nearest-rank percentiles over integer
//!   nanoseconds — no floating-point accumulation order to vary — so the
//!   same records give byte-identical rollups on any thread count.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

/// Version of the JSONL schema ([`write_jsonl`] stamps it, the parser
/// rejects anything newer).
pub const PERFLOG_SCHEMA: u32 = 1;

/// What one [`PerfRecord`] measures.
///
/// Stage kinds carry a duration in `value` (nanoseconds of service time);
/// cache and directory kinds are discrete events (`value` is the item);
/// `Steal` carries the pairs moved; `QueueDepth` and `Window` are engine
/// gauges sampled at window barriers (`node` is then the shard id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant meanings are the table above
pub enum PerfKind {
    Read,
    Parse,
    Preprocess,
    Compare,
    CopyIn,
    CopyOut,
    Postprocess,
    DevHit,
    DevMiss,
    HostHit,
    HostMiss,
    Probe,
    ProbeHit,
    ProbeMiss,
    Steal,
    QueueDepth,
    Window,
}

/// Coarse resource class of a [`PerfKind`] (the `resource` filter axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PerfClass {
    /// Pipeline stages: `value` is a service duration in ns.
    Stage,
    /// Device/host cache hit-miss events.
    Cache,
    /// Distributed-directory probe traffic.
    Directory,
    /// Work-stealing events.
    Steal,
    /// Event-engine gauges (queue depth, window cost).
    Engine,
}

impl PerfKind {
    /// Every kind, in canonical (serialization and rollup) order.
    pub const ALL: &'static [PerfKind] = &[
        PerfKind::Read,
        PerfKind::Parse,
        PerfKind::Preprocess,
        PerfKind::Compare,
        PerfKind::CopyIn,
        PerfKind::CopyOut,
        PerfKind::Postprocess,
        PerfKind::DevHit,
        PerfKind::DevMiss,
        PerfKind::HostHit,
        PerfKind::HostMiss,
        PerfKind::Probe,
        PerfKind::ProbeHit,
        PerfKind::ProbeMiss,
        PerfKind::Steal,
        PerfKind::QueueDepth,
        PerfKind::Window,
    ];

    /// Stable wire label (the JSONL `k` field).
    pub fn label(self) -> &'static str {
        match self {
            PerfKind::Read => "read",
            PerfKind::Parse => "parse",
            PerfKind::Preprocess => "preprocess",
            PerfKind::Compare => "compare",
            PerfKind::CopyIn => "copy_in",
            PerfKind::CopyOut => "copy_out",
            PerfKind::Postprocess => "postprocess",
            PerfKind::DevHit => "dev_hit",
            PerfKind::DevMiss => "dev_miss",
            PerfKind::HostHit => "host_hit",
            PerfKind::HostMiss => "host_miss",
            PerfKind::Probe => "probe",
            PerfKind::ProbeHit => "probe_hit",
            PerfKind::ProbeMiss => "probe_miss",
            PerfKind::Steal => "steal",
            PerfKind::QueueDepth => "queue_depth",
            PerfKind::Window => "window",
        }
    }

    /// Inverse of [`PerfKind::label`].
    pub fn from_label(s: &str) -> Option<PerfKind> {
        PerfKind::ALL.iter().copied().find(|k| k.label() == s)
    }

    /// The resource class this kind belongs to.
    pub fn class(self) -> PerfClass {
        match self {
            PerfKind::Read
            | PerfKind::Parse
            | PerfKind::Preprocess
            | PerfKind::Compare
            | PerfKind::CopyIn
            | PerfKind::CopyOut
            | PerfKind::Postprocess => PerfClass::Stage,
            PerfKind::DevHit | PerfKind::DevMiss | PerfKind::HostHit | PerfKind::HostMiss => {
                PerfClass::Cache
            }
            PerfKind::Probe | PerfKind::ProbeHit | PerfKind::ProbeMiss => PerfClass::Directory,
            PerfKind::Steal => PerfClass::Steal,
            PerfKind::QueueDepth | PerfKind::Window => PerfClass::Engine,
        }
    }

    /// True for duration-valued pipeline stages.
    pub fn is_stage(self) -> bool {
        self.class() == PerfClass::Stage
    }
}

impl fmt::Display for PerfKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One perf sample: when, what, where, how much.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfRecord {
    /// Timestamp in nanoseconds (virtual time in the simulator, wall
    /// clock relative to run start in the threaded runtime).
    pub t_ns: u64,
    /// What was measured.
    pub kind: PerfKind,
    /// Node (or shard, for [`PerfClass::Engine`] gauges) the sample
    /// belongs to.
    pub node: u32,
    /// Kind-dependent payload: duration ns for stages, item id for cache
    /// and directory events, pairs moved for steals, gauge value for
    /// engine kinds.
    pub value: u64,
}

/// Shared recording handle. Cheap to clone; disabled by default.
///
/// A disabled handle makes every [`PerfLog::record`] a single branch —
/// engines thread it unconditionally and callers opt in per run with
/// [`PerfLog::enabled`].
#[derive(Clone, Default)]
pub struct PerfLog {
    inner: Option<Arc<Mutex<Vec<PerfRecord>>>>,
}

impl fmt::Debug for PerfLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PerfLog")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl PerfLog {
    /// A recording handle.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(Vec::new()))),
        }
    }

    /// A no-op handle (the default): every record call is one branch.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether records are being kept.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Appends one record (no-op when disabled).
    #[inline]
    pub fn record(&self, rec: PerfRecord) {
        if let Some(buf) = &self.inner {
            buf.lock().push(rec);
        }
    }

    /// Appends many records at once — the engines' fold path: buffer
    /// per-shard during the run, extend once at the end.
    pub fn extend(&self, records: impl IntoIterator<Item = PerfRecord>) {
        if let Some(buf) = &self.inner {
            buf.lock().extend(records);
        }
    }

    /// Takes every record out of the handle (empty afterwards).
    pub fn take(&self) -> Vec<PerfRecord> {
        match &self.inner {
            Some(buf) => std::mem::take(&mut *buf.lock()),
            None => Vec::new(),
        }
    }

    /// Copies the records out without draining.
    pub fn snapshot(&self) -> Vec<PerfRecord> {
        match &self.inner {
            Some(buf) => buf.lock().clone(),
            None => Vec::new(),
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(buf) => buf.lock().len(),
            None => 0,
        }
    }

    /// True when no records are held (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// File-level metadata: which run a perf log belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PerfMeta {
    /// Run / experiment name.
    pub run: String,
    /// Study cell index, when the log belongs to one grid cell.
    pub cell: Option<u64>,
    /// Backend that produced the records.
    pub backend: String,
}

/// Serializes a perf log as versioned JSONL: one meta header line, then
/// one record per line (`{"t":…,"k":"…","n":…,"v":…}`).
pub fn write_jsonl(meta: &PerfMeta, records: &[PerfRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 48);
    out.push_str(&format!("{{\"perflog\":{PERFLOG_SCHEMA},\"run\":\""));
    // Run/backend names are identifiers; escape the two JSON-breaking
    // characters anyway so a hostile name cannot corrupt the file.
    out.push_str(&meta.run.replace('\\', "\\\\").replace('"', "\\\""));
    out.push_str("\",");
    if let Some(cell) = meta.cell {
        out.push_str(&format!("\"cell\":{cell},"));
    }
    out.push_str("\"backend\":\"");
    out.push_str(&meta.backend.replace('\\', "\\\\").replace('"', "\\\""));
    out.push_str(&format!("\",\"records\":{}}}\n", records.len()));
    for r in records {
        out.push_str(&format!(
            "{{\"t\":{},\"k\":\"{}\",\"n\":{},\"v\":{}}}\n",
            r.t_ns,
            r.kind.label(),
            r.node,
            r.value
        ));
    }
    out
}

/// Extracts the unsigned integer following `key` in a single JSON line.
fn field_u64(line: &str, key: &str) -> Result<u64, String> {
    let at = line
        .find(key)
        .ok_or_else(|| format!("missing {key} in {line:?}"))?;
    let digits: String = line[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .map_err(|_| format!("non-numeric {key} in {line:?}"))
}

/// Extracts the string value following `key` in a single JSON line.
fn field_str<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let at = line
        .find(key)
        .ok_or_else(|| format!("missing {key} in {line:?}"))?;
    let rest = &line[at + key.len()..];
    let end = rest
        .find('"')
        .ok_or_else(|| format!("unterminated {key} in {line:?}"))?;
    Ok(&rest[..end])
}

/// Parses a perf log produced by [`write_jsonl`]. Strict: unknown kinds,
/// a schema bump, or a record-count mismatch are errors — the committed
/// artifacts must not drift silently.
pub fn parse_jsonl(text: &str) -> Result<(PerfMeta, Vec<PerfRecord>), String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty perf log")?;
    let schema = field_u64(header, "\"perflog\":")?;
    if schema > u64::from(PERFLOG_SCHEMA) {
        return Err(format!(
            "perf log schema {schema} is newer than supported {PERFLOG_SCHEMA}"
        ));
    }
    let meta = PerfMeta {
        run: field_str(header, "\"run\":\"")?.to_string(),
        cell: field_u64(header, "\"cell\":").ok(),
        backend: field_str(header, "\"backend\":\"")?.to_string(),
    };
    let declared = field_u64(header, "\"records\":")?;
    let mut records = Vec::with_capacity(declared as usize);
    for line in lines {
        let label = field_str(line, "\"k\":\"")?;
        let kind =
            PerfKind::from_label(label).ok_or_else(|| format!("unknown perf kind {label:?}"))?;
        records.push(PerfRecord {
            t_ns: field_u64(line, "\"t\":")?,
            kind,
            node: field_u64(line, "\"n\":")? as u32,
            value: field_u64(line, "\"v\":")?,
        });
    }
    if records.len() as u64 != declared {
        return Err(format!(
            "perf log declares {declared} records but carries {}",
            records.len()
        ));
    }
    Ok((meta, records))
}

/// Filtered view over a record slice: chainable filters, then terminal
/// aggregates. Borrowing and allocation-free until a terminal call.
#[derive(Debug, Clone, Copy)]
pub struct PerfQuery<'a> {
    records: &'a [PerfRecord],
    kind: Option<PerfKind>,
    class: Option<PerfClass>,
    node: Option<u32>,
    since: u64,
    until: u64,
}

impl<'a> PerfQuery<'a> {
    /// A query over every record in `records`.
    pub fn new(records: &'a [PerfRecord]) -> Self {
        Self {
            records,
            kind: None,
            class: None,
            node: None,
            since: 0,
            until: u64::MAX,
        }
    }

    /// Keep only records of `kind`.
    pub fn kind(mut self, kind: PerfKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Keep only records whose kind belongs to `class`.
    pub fn class(mut self, class: PerfClass) -> Self {
        self.class = Some(class);
        self
    }

    /// Keep only records of one node (or shard, for engine gauges).
    pub fn node(mut self, node: u32) -> Self {
        self.node = Some(node);
        self
    }

    /// Keep only records with `since <= t_ns < until`.
    pub fn between(mut self, since: u64, until: u64) -> Self {
        self.since = since;
        self.until = until;
        self
    }

    fn matches(&self, r: &PerfRecord) -> bool {
        self.kind.is_none_or(|k| r.kind == k)
            && self.class.is_none_or(|c| r.kind.class() == c)
            && self.node.is_none_or(|n| r.node == n)
            && r.t_ns >= self.since
            && r.t_ns < self.until
    }

    /// Iterator over the matching records.
    pub fn iter(&self) -> impl Iterator<Item = &'a PerfRecord> + '_ {
        self.records.iter().filter(|r| self.matches(r))
    }

    /// Number of matching records.
    pub fn count(&self) -> u64 {
        self.iter().count() as u64
    }

    /// Matching `value`s, sorted ascending (the percentile input).
    pub fn values(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.iter().map(|r| r.value).collect();
        v.sort_unstable();
        v
    }

    /// Sum of matching `value`s.
    pub fn total(&self) -> u64 {
        self.iter().map(|r| r.value).sum()
    }

    /// Nearest-rank percentile of the matching values (`p` in 1..=100).
    /// Pure integer selection — byte-stable on every platform.
    pub fn percentile(&self, p: u8) -> Option<u64> {
        percentile(&self.values(), p)
    }

    /// Matching events per second of `span_ns` (0 for an empty span).
    pub fn rate_per_sec(&self, span_ns: u64) -> f64 {
        if span_ns == 0 {
            0.0
        } else {
            self.count() as f64 * 1e9 / span_ns as f64
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
pub fn percentile(sorted: &[u64], p: u8) -> Option<u64> {
    if sorted.is_empty() || p == 0 || p > 100 {
        return None;
    }
    let rank = (u64::from(p) * sorted.len() as u64).div_ceil(100);
    Some(sorted[rank as usize - 1])
}

/// p50/p99 summary of one stage kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// Which stage.
    pub kind: PerfKind,
    /// Samples seen.
    pub count: u64,
    /// Median service time, ns.
    pub p50_ns: u64,
    /// 99th-percentile service time, ns (nearest rank).
    pub p99_ns: u64,
}

/// Study-level rollup of one run's perf log: per-stage latency
/// percentiles plus steal/probe rates — the summary `StudyReport`
/// carries into JSON/CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRollup {
    /// Stages that recorded at least one sample, in [`PerfKind::ALL`]
    /// order.
    pub stages: Vec<StageStats>,
    /// Total records rolled up.
    pub records: u64,
    /// Timestamp of the latest record, ns (the rate denominator).
    pub span_ns: u64,
    /// Work-steal events.
    pub steals: u64,
    /// Steals per second of span.
    pub steal_per_sec: f64,
    /// Directory probes issued.
    pub probes: u64,
    /// Probes per second of span.
    pub probe_per_sec: f64,
    /// Device-cache hit ratio over hit+miss events (0 when none).
    pub dev_hit_ratio: f64,
    /// Host-cache hit ratio over hit+miss events (0 when none).
    pub host_hit_ratio: f64,
}

impl PerfRollup {
    /// Rolls up a record set. Depends only on the multiset of records, so
    /// it is byte-stable across engine thread counts.
    pub fn from_records(records: &[PerfRecord]) -> Self {
        let span_ns = records.iter().map(|r| r.t_ns).max().unwrap_or(0);
        let mut stages = Vec::new();
        for &kind in PerfKind::ALL.iter().filter(|k| k.is_stage()) {
            let vals = PerfQuery::new(records).kind(kind).values();
            if let (Some(p50), Some(p99)) = (percentile(&vals, 50), percentile(&vals, 99)) {
                stages.push(StageStats {
                    kind,
                    count: vals.len() as u64,
                    p50_ns: p50,
                    p99_ns: p99,
                });
            }
        }
        let q = |k: PerfKind| PerfQuery::new(records).kind(k).count();
        let ratio = |hit: u64, miss: u64| {
            if hit + miss == 0 {
                0.0
            } else {
                hit as f64 / (hit + miss) as f64
            }
        };
        let steals = q(PerfKind::Steal);
        let probes = q(PerfKind::Probe);
        let rate = |n: u64| {
            if span_ns == 0 {
                0.0
            } else {
                n as f64 * 1e9 / span_ns as f64
            }
        };
        Self {
            stages,
            records: records.len() as u64,
            span_ns,
            steals,
            steal_per_sec: rate(steals),
            probes,
            probe_per_sec: rate(probes),
            dev_hit_ratio: ratio(q(PerfKind::DevHit), q(PerfKind::DevMiss)),
            host_hit_ratio: ratio(q(PerfKind::HostHit), q(PerfKind::HostMiss)),
        }
    }

    /// The rolled-up stats of one stage, if it recorded samples.
    pub fn stage(&self, kind: PerfKind) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.kind == kind)
    }

    /// Serializes the rollup as one JSON object (hand-rolled; the
    /// workspace links no serde).
    pub fn to_json(&self) -> String {
        let f = |x: f64| {
            if x.fract() == 0.0 && x.abs() < 1e15 {
                format!("{x:.1}")
            } else {
                format!("{x}")
            }
        };
        let mut out = String::from("{\"stages\":{");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
                s.kind.label(),
                s.count,
                s.p50_ns,
                s.p99_ns
            ));
        }
        out.push_str(&format!(
            "}},\"records\":{},\"span_ns\":{},\"steals\":{},\"steal_per_sec\":{},\
             \"probes\":{},\"probe_per_sec\":{},\"dev_hit_ratio\":{},\"host_hit_ratio\":{}}}",
            self.records,
            self.span_ns,
            self.steals,
            f(self.steal_per_sec),
            self.probes,
            f(self.probe_per_sec),
            f(self.dev_hit_ratio),
            f(self.host_hit_ratio),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ns: u64, kind: PerfKind, node: u32, value: u64) -> PerfRecord {
        PerfRecord {
            t_ns,
            kind,
            node,
            value,
        }
    }

    #[test]
    fn kind_labels_round_trip() {
        for &k in PerfKind::ALL {
            assert_eq!(PerfKind::from_label(k.label()), Some(k), "{k:?}");
        }
        assert_eq!(PerfKind::from_label("bogus"), None);
        // Labels must be unique (they are the wire representation).
        let mut labels: Vec<&str> = PerfKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), PerfKind::ALL.len());
    }

    #[test]
    fn disabled_log_is_inert() {
        let log = PerfLog::disabled();
        assert!(!log.is_enabled());
        log.record(rec(1, PerfKind::Compare, 0, 10));
        log.extend([rec(2, PerfKind::Parse, 0, 20)]);
        assert!(log.is_empty());
        assert!(log.take().is_empty());
    }

    #[test]
    fn enabled_log_collects_and_drains() {
        let log = PerfLog::enabled();
        let clone = log.clone();
        log.record(rec(1, PerfKind::Compare, 0, 10));
        clone.record(rec(2, PerfKind::Compare, 1, 30));
        assert_eq!(log.len(), 2);
        let taken = log.take();
        assert_eq!(taken.len(), 2);
        assert!(clone.is_empty(), "take drains every clone's view");
    }

    #[test]
    fn nearest_rank_percentiles() {
        let v = vec![10, 20, 30, 40];
        assert_eq!(percentile(&v, 50), Some(20));
        assert_eq!(percentile(&v, 99), Some(40));
        assert_eq!(percentile(&v, 100), Some(40));
        assert_eq!(percentile(&v, 1), Some(10));
        assert_eq!(percentile(&[], 50), None);
        assert_eq!(percentile(&v, 0), None);
        assert_eq!(percentile(&[7], 50), Some(7));
    }

    #[test]
    fn query_filters_compose() {
        let records = vec![
            rec(10, PerfKind::Compare, 0, 100),
            rec(20, PerfKind::Compare, 1, 200),
            rec(30, PerfKind::Parse, 0, 300),
            rec(40, PerfKind::Steal, 2, 4),
            rec(50, PerfKind::DevHit, 0, 7),
        ];
        let q = PerfQuery::new(&records);
        assert_eq!(q.count(), 5);
        assert_eq!(q.kind(PerfKind::Compare).count(), 2);
        assert_eq!(q.kind(PerfKind::Compare).node(1).count(), 1);
        assert_eq!(q.class(PerfClass::Stage).count(), 3);
        assert_eq!(q.class(PerfClass::Cache).count(), 1);
        assert_eq!(q.between(20, 40).count(), 2);
        assert_eq!(q.kind(PerfKind::Compare).percentile(50), Some(100));
        assert_eq!(q.kind(PerfKind::Steal).total(), 4);
        // 5 events over 50 ns.
        assert!((q.rate_per_sec(50) - 1e8).abs() < 1e-6);
    }

    #[test]
    fn jsonl_round_trips() {
        let meta = PerfMeta {
            run: "fig12".into(),
            cell: Some(3),
            backend: "sim".into(),
        };
        let records = vec![
            rec(10, PerfKind::Read, 0, 1000),
            rec(20, PerfKind::Compare, 5, 2000),
            rec(30, PerfKind::QueueDepth, 1, 42),
        ];
        let text = write_jsonl(&meta, &records);
        assert!(text.starts_with(&format!("{{\"perflog\":{PERFLOG_SCHEMA},")));
        let (meta2, records2) = parse_jsonl(&text).expect("parse");
        assert_eq!(meta, meta2);
        assert_eq!(records, records2);
        // Serialization is deterministic.
        assert_eq!(text, write_jsonl(&meta2, &records2));
    }

    #[test]
    fn jsonl_without_cell_round_trips() {
        let meta = PerfMeta {
            run: "adhoc".into(),
            cell: None,
            backend: "threaded".into(),
        };
        let text = write_jsonl(&meta, &[]);
        let (meta2, records) = parse_jsonl(&text).expect("parse");
        assert_eq!(meta2.cell, None);
        assert!(records.is_empty());
    }

    #[test]
    fn parser_rejects_drift() {
        assert!(parse_jsonl("").is_err());
        let newer = format!(
            "{{\"perflog\":{},\"run\":\"x\",\"backend\":\"sim\",\"records\":0}}\n",
            PERFLOG_SCHEMA + 1
        );
        assert!(parse_jsonl(&newer).unwrap_err().contains("newer"));
        let unknown = "{\"perflog\":1,\"run\":\"x\",\"backend\":\"sim\",\"records\":1}\n\
                       {\"t\":1,\"k\":\"warp_drive\",\"n\":0,\"v\":2}\n";
        assert!(parse_jsonl(unknown).unwrap_err().contains("warp_drive"));
        let short = "{\"perflog\":1,\"run\":\"x\",\"backend\":\"sim\",\"records\":2}\n\
                     {\"t\":1,\"k\":\"compare\",\"n\":0,\"v\":2}\n";
        assert!(parse_jsonl(short).unwrap_err().contains("declares 2"));
    }

    #[test]
    fn rollup_summarizes_stages_and_rates() {
        let mut records = Vec::new();
        for i in 0..100u64 {
            records.push(rec(i * 10, PerfKind::Compare, 0, 1000 + i));
        }
        records.push(rec(1000, PerfKind::Steal, 1, 64));
        records.push(rec(1000, PerfKind::Probe, 1, 3));
        records.push(rec(1000, PerfKind::DevHit, 0, 1));
        records.push(rec(1000, PerfKind::DevHit, 0, 2));
        records.push(rec(1000, PerfKind::DevMiss, 0, 3));
        let roll = PerfRollup::from_records(&records);
        assert_eq!(roll.records, records.len() as u64);
        assert_eq!(roll.span_ns, 1000);
        let cmp = roll.stage(PerfKind::Compare).expect("compare stage");
        assert_eq!(cmp.count, 100);
        assert_eq!(cmp.p50_ns, 1049);
        assert_eq!(cmp.p99_ns, 1098);
        assert_eq!(roll.stage(PerfKind::Parse), None);
        assert_eq!(roll.steals, 1);
        assert!((roll.steal_per_sec - 1e6).abs() < 1e-9);
        assert_eq!(roll.probes, 1);
        assert!((roll.dev_hit_ratio - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(roll.host_hit_ratio, 0.0);
        let json = roll.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"compare\":{\"count\":100,\"p50_ns\":1049,\"p99_ns\":1098}"));
        // Rollup is a pure function of the record multiset.
        assert_eq!(roll, PerfRollup::from_records(&records));
    }

    #[test]
    fn empty_rollup_is_all_zeroes() {
        let roll = PerfRollup::from_records(&[]);
        assert!(roll.stages.is_empty());
        assert_eq!(roll.span_ns, 0);
        assert_eq!(roll.steal_per_sec, 0.0);
        assert_eq!(roll.to_json().matches(':').count(), 9);
    }
}
