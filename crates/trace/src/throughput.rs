//! Rolling-average throughput series (the paper's Fig 14).
//!
//! Fig 14 plots per-GPU processing throughput over time, measured as a
//! one-minute rolling average of completed pairs. [`ThroughputSeries`]
//! ingests completion timestamps per source (a GPU) and produces the series.

use std::collections::BTreeMap;

/// Completion events bucketed per source, yielding rolling-average rates.
#[derive(Debug, Clone, Default)]
pub struct ThroughputSeries {
    events: BTreeMap<u32, Vec<u64>>,
}

impl ThroughputSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `source` completed one unit of work at `t_ns`.
    pub fn record(&mut self, source: u32, t_ns: u64) {
        self.events.entry(source).or_default().push(t_ns);
    }

    /// The sources that recorded at least one event.
    pub fn sources(&self) -> Vec<u32> {
        self.events.keys().copied().collect()
    }

    /// Folds another series into this one, appending `other`'s events per
    /// source. When the source sets are disjoint (e.g. per-shard series in
    /// a sharded simulation, where a GPU id lives on exactly one shard)
    /// the merge is order-independent.
    pub fn merge(&mut self, other: &ThroughputSeries) {
        for (&source, times) in &other.events {
            self.events.entry(source).or_default().extend(times);
        }
    }

    /// Total events for a source.
    pub fn total(&self, source: u32) -> usize {
        self.events.get(&source).map_or(0, Vec::len)
    }

    /// Raw completion timestamps for `source`, in recording order (what a
    /// serializer needs to reconstruct the series exactly).
    pub fn timestamps(&self, source: u32) -> &[u64] {
        self.events.get(&source).map_or(&[], Vec::as_slice)
    }

    /// Rolling-average throughput (events/second) for `source`, sampled every
    /// `step_ns`, averaged over the trailing `window_ns`.
    ///
    /// Returns `(t_seconds, rate)` pairs covering `[0, end_ns]`.
    pub fn rolling(
        &self,
        source: u32,
        window_ns: u64,
        step_ns: u64,
        end_ns: u64,
    ) -> Vec<(f64, f64)> {
        assert!(window_ns > 0 && step_ns > 0);
        let mut times = match self.events.get(&source) {
            Some(v) => v.clone(),
            None => return Vec::new(),
        };
        times.sort_unstable();
        let mut out = Vec::new();
        let mut lo = 0usize; // first event inside the window
        let mut hi = 0usize; // first event after `t`
        let mut t = 0u64;
        while t <= end_ns {
            while hi < times.len() && times[hi] <= t {
                hi += 1;
            }
            let win_start = t.saturating_sub(window_ns);
            while lo < hi && times[lo] <= win_start {
                lo += 1;
            }
            let effective_window = window_ns.min(t.max(1)) as f64 / 1e9;
            let rate = (hi - lo) as f64 / effective_window;
            out.push((t as f64 / 1e9, rate));
            t += step_ns;
        }
        out
    }

    /// Average throughput over the whole run for a source (events/second).
    pub fn average(&self, source: u32, end_ns: u64) -> f64 {
        if end_ns == 0 {
            return 0.0;
        }
        self.total(source) as f64 / (end_ns as f64 / 1e9)
    }

    /// The latest event timestamp over all sources.
    pub fn end_ns(&self) -> u64 {
        self.events
            .values()
            .flat_map(|v| v.iter().copied())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn steady_rate_measured() {
        let mut s = ThroughputSeries::new();
        // 10 events/second for 10 seconds.
        for i in 0..100 {
            s.record(0, i * SEC / 10 + 1);
        }
        let series = s.rolling(0, SEC, SEC, 10 * SEC);
        // After warm-up the rolling rate should sit at ~10/s.
        let late: Vec<f64> = series.iter().skip(3).map(|&(_, r)| r).collect();
        for r in late {
            assert!((r - 10.0).abs() <= 1.0, "rate {r} not ~10");
        }
    }

    #[test]
    fn empty_source_yields_empty_series() {
        let s = ThroughputSeries::new();
        assert!(s.rolling(3, SEC, SEC, 10 * SEC).is_empty());
        assert_eq!(s.average(3, 10 * SEC), 0.0);
    }

    #[test]
    fn sources_and_totals() {
        let mut s = ThroughputSeries::new();
        s.record(1, 10);
        s.record(1, 20);
        s.record(4, 30);
        assert_eq!(s.sources(), vec![1, 4]);
        assert_eq!(s.total(1), 2);
        assert_eq!(s.total(4), 1);
        assert_eq!(s.timestamps(1), &[10, 20]);
        assert_eq!(s.timestamps(9), &[] as &[u64]);
        assert_eq!(s.end_ns(), 30);
    }

    #[test]
    fn average_rate() {
        let mut s = ThroughputSeries::new();
        for i in 0..50 {
            s.record(0, i);
        }
        assert!((s.average(0, 10 * SEC) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rate_drops_after_burst_leaves_window() {
        let mut s = ThroughputSeries::new();
        // Burst of 100 events in the first second, then silence.
        for i in 0..100 {
            s.record(0, i * SEC / 100);
        }
        let series = s.rolling(0, SEC, SEC, 5 * SEC);
        let at_1s = series[1].1;
        let at_5s = series[5].1;
        assert!(at_1s > 50.0, "burst rate {at_1s}");
        assert_eq!(at_5s, 0.0);
    }
}
