//! Timeline aggregation: per-thread busy time (the paper's Fig 8 / Fig 10).

use std::collections::BTreeMap;

use crate::span::{Span, TaskKind, ThreadClass};

/// Busy-time totals for one thread class.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BusyTime {
    /// Total busy nanoseconds per task kind.
    pub per_kind: BTreeMap<TaskKind, u64>,
}

impl BusyTime {
    /// Total busy nanoseconds across all kinds.
    pub fn total_ns(&self) -> u64 {
        self.per_kind.values().sum()
    }

    /// Busy nanoseconds for one kind.
    pub fn kind_ns(&self, kind: TaskKind) -> u64 {
        self.per_kind.get(&kind).copied().unwrap_or(0)
    }
}

/// An analyzed trace.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    spans: Vec<Span>,
}

impl Timeline {
    /// Builds a timeline from recorded spans.
    pub fn new(spans: Vec<Span>) -> Self {
        Self { spans }
    }

    /// The underlying spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// End of the last span (the trace's makespan), 0 for an empty trace.
    pub fn end_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.end_ns).max().unwrap_or(0)
    }

    /// Aggregates busy time per thread class (summed over lanes). This is the
    /// quantity plotted as the bars of Fig 8: "total time of tasks executed
    /// by each thread".
    pub fn busy_by_class(&self) -> BTreeMap<ThreadClass, BusyTime> {
        let mut out: BTreeMap<ThreadClass, BusyTime> = BTreeMap::new();
        for s in &self.spans {
            *out.entry(s.class)
                .or_default()
                .per_kind
                .entry(s.kind)
                .or_insert(0) += s.duration_ns();
        }
        out
    }

    /// Aggregates busy time per individual lane of one class (e.g. per GPU).
    pub fn busy_by_lane(&self, class: ThreadClass) -> BTreeMap<u32, u64> {
        let mut out = BTreeMap::new();
        for s in self.spans.iter().filter(|s| s.class == class) {
            *out.entry(s.lane).or_insert(0) += s.duration_ns();
        }
        out
    }

    /// Utilization of a class: busy time divided by the trace makespan times
    /// the number of lanes observed for that class.
    pub fn utilization(&self, class: ThreadClass) -> f64 {
        let end = self.end_ns();
        if end == 0 {
            return 0.0;
        }
        let lanes = self.busy_by_lane(class);
        if lanes.is_empty() {
            return 0.0;
        }
        let busy: u64 = lanes.values().sum();
        busy as f64 / (end as f64 * lanes.len() as f64)
    }

    /// Number of spans of a given kind.
    pub fn count_kind(&self, kind: TaskKind) -> usize {
        self.spans.iter().filter(|s| s.kind == kind).count()
    }

    /// Merges the maximum overlap check: returns `true` if any two spans on
    /// the same (class, lane) overlap in time — a correctness violation for
    /// resources that execute tasks one at a time.
    pub fn has_lane_overlap(&self) -> bool {
        let mut by_lane: BTreeMap<(ThreadClass, u32), Vec<(u64, u64)>> = BTreeMap::new();
        for s in &self.spans {
            by_lane
                .entry((s.class, s.lane))
                .or_default()
                .push((s.start_ns, s.end_ns));
        }
        for intervals in by_lane.values_mut() {
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                if w[1].0 < w[0].1 {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(class: ThreadClass, lane: u32, kind: TaskKind, start: u64, end: u64) -> Span {
        Span {
            class,
            lane,
            kind,
            start_ns: start,
            end_ns: end,
            tag: 0,
        }
    }

    #[test]
    fn busy_by_class_sums_durations() {
        let tl = Timeline::new(vec![
            span(ThreadClass::Gpu, 0, TaskKind::Compare, 0, 10),
            span(ThreadClass::Gpu, 0, TaskKind::Compare, 10, 30),
            span(ThreadClass::Gpu, 0, TaskKind::Preprocess, 30, 35),
            span(ThreadClass::Cpu, 1, TaskKind::Parse, 0, 7),
        ]);
        let busy = tl.busy_by_class();
        assert_eq!(busy[&ThreadClass::Gpu].total_ns(), 35);
        assert_eq!(busy[&ThreadClass::Gpu].kind_ns(TaskKind::Compare), 30);
        assert_eq!(busy[&ThreadClass::Gpu].kind_ns(TaskKind::Preprocess), 5);
        assert_eq!(busy[&ThreadClass::Cpu].total_ns(), 7);
    }

    #[test]
    fn end_ns_is_makespan() {
        let tl = Timeline::new(vec![
            span(ThreadClass::Io, 0, TaskKind::Read, 5, 100),
            span(ThreadClass::Cpu, 0, TaskKind::Parse, 0, 60),
        ]);
        assert_eq!(tl.end_ns(), 100);
        assert_eq!(Timeline::default().end_ns(), 0);
    }

    #[test]
    fn utilization_full_lane() {
        let tl = Timeline::new(vec![span(ThreadClass::Gpu, 0, TaskKind::Compare, 0, 100)]);
        assert!((tl.utilization(ThreadClass::Gpu) - 1.0).abs() < 1e-12);
        assert_eq!(tl.utilization(ThreadClass::Io), 0.0);
    }

    #[test]
    fn utilization_two_lanes_half_busy() {
        let tl = Timeline::new(vec![
            span(ThreadClass::Gpu, 0, TaskKind::Compare, 0, 100),
            span(ThreadClass::Gpu, 1, TaskKind::Compare, 0, 0),
        ]);
        // lane 1 contributes nothing; 100 busy over 2 lanes × 100 makespan.
        assert!((tl.utilization(ThreadClass::Gpu) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_detection() {
        let ok = Timeline::new(vec![
            span(ThreadClass::Gpu, 0, TaskKind::Compare, 0, 10),
            span(ThreadClass::Gpu, 0, TaskKind::Compare, 10, 20),
            span(ThreadClass::Gpu, 1, TaskKind::Compare, 5, 15),
        ]);
        assert!(!ok.has_lane_overlap());

        let bad = Timeline::new(vec![
            span(ThreadClass::Gpu, 0, TaskKind::Compare, 0, 10),
            span(ThreadClass::Gpu, 0, TaskKind::Compare, 9, 20),
        ]);
        assert!(bad.has_lane_overlap());
    }

    #[test]
    fn count_kind_filters() {
        let tl = Timeline::new(vec![
            span(ThreadClass::Cpu, 0, TaskKind::Parse, 0, 1),
            span(ThreadClass::Cpu, 0, TaskKind::Parse, 1, 2),
            span(ThreadClass::Io, 0, TaskKind::Read, 0, 1),
        ]);
        assert_eq!(tl.count_kind(TaskKind::Parse), 2);
        assert_eq!(tl.count_kind(TaskKind::Compare), 0);
    }
}
