//! Task tracing and timeline analysis for Rocket (§4.3 of the paper).
//!
//! Rocket's runtime launches one thread (class) per resource — CPU pool, GPU
//! kernel launch, H2D copy, D2H copy, I/O — and an optional profiling flag
//! records every task each thread executes. The paper uses those traces for
//! Fig 6 (timeline), Fig 8/10 (per-thread busy time), and Fig 14 (throughput
//! over time).
//!
//! Timestamps are `u64` nanoseconds relative to the start of a run, which
//! lets the same machinery serve both the threaded runtime (wall-clock) and
//! the discrete-event simulator (virtual time).

#![warn(missing_docs)]

pub mod chrome;
pub mod perflog;
pub mod recorder;
pub mod span;
pub mod throughput;
pub mod timeline;

pub use perflog::{
    PerfClass, PerfKind, PerfLog, PerfMeta, PerfQuery, PerfRecord, PerfRollup, StageStats,
};
pub use recorder::TraceRecorder;
pub use span::{Span, TaskKind, ThreadClass};
pub use throughput::ThroughputSeries;
pub use timeline::{BusyTime, Timeline};
