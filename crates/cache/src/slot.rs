//! The slot cache: the WRITE/READ state machine of the paper's Fig 4.
//!
//! A cache manages a fixed number of fixed-size slots (device or host
//! buffers — the cache itself stores only slot *indices*; buffer payloads
//! live with the caller, addressed by [`SlotIdx`]). Each slot is either
//! empty, being written by exactly one loader, or readable by any number of
//! concurrent readers. Eviction is LRU over readable slots with zero
//! readers.
//!
//! The cache is a synchronous state machine with explicit waiter tokens: it
//! never blocks or spawns threads. The threaded runtime wraps it in a mutex
//! and parks threads on the returned tokens; the discrete-event simulator
//! schedules wake events for them. One policy implementation, two engines.

use std::collections::VecDeque;

use crate::fxhash::FxHashMap;
use crate::lru::LruList;
use crate::stats::CacheStats;

/// Identifier of a data-set item (the `i` of `ℓ(i)`).
pub type ItemId = u64;

/// Index of a slot within a cache (also indexes the caller's payload array).
pub type SlotIdx = usize;

/// Outcome of a cache request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The item is resident; the caller now holds a read lease on the slot
    /// and must call [`SlotCache::release`] when done.
    Hit(SlotIdx),
    /// Another job is writing this item; the caller's waiter token was
    /// parked and will be returned by `publish`/`abort` — retry then.
    Pending,
    /// The item missed; the slot was reserved in WRITE state. The caller
    /// must fill the payload and call [`SlotCache::publish`] (or
    /// [`SlotCache::abort`] on failure).
    MustLoad(SlotIdx),
    /// No evictable slot exists right now; the waiter token was parked and
    /// will be returned by a future `release`/`abort` — retry then.
    Busy,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum SlotState<W> {
    Empty,
    Writing { item: ItemId, waiters: Vec<W> },
    Ready { item: ItemId, readers: u32 },
}

/// Item → slot lookup table.
///
/// Callers with a dense item space (the simulator's items are `0..n`) get
/// an O(1) array-indexed table; open-world callers keep an Fx-hashed map.
#[derive(Debug)]
enum ItemMap {
    /// General case: item ids are sparse / unbounded.
    Hash(FxHashMap<ItemId, SlotIdx>),
    /// Dense case: direct index by item id (`NO_SLOT` = absent). Grows on
    /// demand, so out-of-range items stay correct, just slower to insert.
    Dense(Vec<u32>),
}

const NO_SLOT: u32 = u32::MAX;

impl ItemMap {
    #[inline]
    fn get(&self, item: ItemId) -> Option<SlotIdx> {
        match self {
            ItemMap::Hash(m) => m.get(&item).copied(),
            ItemMap::Dense(v) => match v.get(item as usize) {
                Some(&s) if s != NO_SLOT => Some(s as SlotIdx),
                _ => None,
            },
        }
    }

    #[inline]
    fn insert(&mut self, item: ItemId, slot: SlotIdx) {
        match self {
            ItemMap::Hash(m) => {
                m.insert(item, slot);
            }
            ItemMap::Dense(v) => {
                let i = item as usize;
                if i >= v.len() {
                    v.resize(i + 1, NO_SLOT);
                }
                v[i] = u32::try_from(slot).expect("slot index fits u32");
            }
        }
    }

    #[inline]
    fn remove(&mut self, item: ItemId) {
        match self {
            ItemMap::Hash(m) => {
                m.remove(&item);
            }
            ItemMap::Dense(v) => {
                if let Some(s) = v.get_mut(item as usize) {
                    *s = NO_SLOT;
                }
            }
        }
    }

    /// All `(item, slot)` entries, in unspecified order.
    fn entries(&self) -> Vec<(ItemId, SlotIdx)> {
        match self {
            ItemMap::Hash(m) => m.iter().map(|(&i, &s)| (i, s)).collect(),
            ItemMap::Dense(v) => v
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s != NO_SLOT)
                .map(|(i, &s)| (i as ItemId, s as SlotIdx))
                .collect(),
        }
    }
}

/// The multi-reader / single-writer slot cache.
///
/// `W` is the caller's waiter token type (a thread parker, a simulator job
/// id, …). Tokens returned from mutating calls must be woken by the caller;
/// woken jobs simply retry `get`.
#[derive(Debug)]
pub struct SlotCache<W> {
    states: Vec<SlotState<W>>,
    /// Item → slot index (dense array or Fx-hashed map; see [`ItemMap`]).
    map: ItemMap,
    /// Readable slots with zero readers, LRU-ordered; plus explicit free list.
    lru: LruList,
    free: Vec<SlotIdx>,
    capacity_waiters: VecDeque<W>,
    stats: CacheStats,
}

impl<W> SlotCache<W> {
    /// Creates a cache with `slots` empty slots.
    pub fn new(slots: usize) -> Self {
        Self {
            states: (0..slots).map(|_| SlotState::Empty).collect(),
            map: ItemMap::Hash(FxHashMap::with_capacity_and_hasher(
                slots,
                Default::default(),
            )),
            lru: LruList::new(slots),
            free: (0..slots).rev().collect(),
            capacity_waiters: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// Creates a cache with `slots` empty slots whose item ids are known to
    /// be dense in `0..items`: the item → slot table becomes a flat array,
    /// removing hashing from every lookup. Items ≥ `items` remain correct
    /// (the table grows on demand).
    pub fn with_item_space(slots: usize, items: usize) -> Self {
        Self {
            map: ItemMap::Dense(vec![NO_SLOT; items]),
            ..Self::new(slots)
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.states.len()
    }

    /// Number of slots currently holding (or loading) an item.
    pub fn occupied(&self) -> usize {
        self.capacity() - self.free.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of waiters currently parked for capacity (diagnostics).
    pub fn parked_capacity_waiters(&self) -> usize {
        self.capacity_waiters.len()
    }

    /// Number of slots currently evictable (READ state, zero readers).
    pub fn evictable(&self) -> usize {
        self.lru.len()
    }

    /// Pops one parked capacity waiter, if an evictable or free slot exists
    /// to satisfy it. Callers use this after operations that create
    /// capacity without an accompanying `release` (e.g. `publish`, whose
    /// slot becomes evictable the moment its readers drain).
    pub fn pop_capacity_waiter(&mut self) -> Option<W> {
        if self.lru.is_empty() && self.free.is_empty() {
            return None;
        }
        self.capacity_waiters.pop_front()
    }

    /// Whether `item` is resident in READ state (used when serving remote
    /// peers: in-flight writes don't count). Does not touch LRU order.
    pub fn contains_ready(&self, item: ItemId) -> bool {
        matches!(
            self.map.get(item).map(|s| &self.states[s]),
            Some(SlotState::Ready { .. })
        )
    }

    /// Takes a read lease on `item` only if it is already resident in READ
    /// state; never reserves a slot, parks a waiter, or counts a miss.
    ///
    /// Used when serving a remote peer's distributed-cache fetch: a miss
    /// must answer "not here" without side effects (the protocol is best
    /// effort — the requester falls back to loading locally).
    pub fn try_read(&mut self, item: ItemId) -> Option<SlotIdx> {
        let slot = self.map.get(item)?;
        match &mut self.states[slot] {
            SlotState::Ready { readers, .. } => {
                if *readers == 0 {
                    self.lru.remove(slot);
                }
                *readers += 1;
                Some(slot)
            }
            _ => None,
        }
    }

    /// Requests `item` for reading.
    ///
    /// `waiter` supplies this job's token, consumed only when the result is
    /// [`Lookup::Pending`] or [`Lookup::Busy`].
    pub fn get(&mut self, item: ItemId, waiter: impl FnOnce() -> W) -> Lookup {
        if let Some(slot) = self.map.get(item) {
            match &mut self.states[slot] {
                SlotState::Ready { readers, .. } => {
                    if *readers == 0 {
                        self.lru.remove(slot);
                    }
                    *readers += 1;
                    self.stats.hits += 1;
                    return Lookup::Hit(slot);
                }
                SlotState::Writing { waiters, .. } => {
                    waiters.push(waiter());
                    self.stats.hits_pending += 1;
                    return Lookup::Pending;
                }
                SlotState::Empty => unreachable!("mapped slot cannot be empty"),
            }
        }
        // Miss: find a slot — prefer free slots, then evict LRU.
        let slot = if let Some(s) = self.free.pop() {
            s
        } else if let Some(s) = self.lru.pop_back() {
            let old = match &self.states[s] {
                SlotState::Ready { item, readers } => {
                    debug_assert_eq!(*readers, 0, "evicting a slot with readers");
                    *item
                }
                _ => unreachable!("LRU slot not in Ready state"),
            };
            self.map.remove(old);
            self.stats.evictions += 1;
            s
        } else {
            self.capacity_waiters.push_back(waiter());
            self.stats.capacity_stalls += 1;
            return Lookup::Busy;
        };
        self.states[slot] = SlotState::Writing {
            item,
            waiters: Vec::new(),
        };
        self.map.insert(item, slot);
        self.stats.misses += 1;
        Lookup::MustLoad(slot)
    }

    /// Completes a load: transitions the slot WRITE → READ (zero readers)
    /// and returns the parked waiters, which must be woken to retry `get`.
    ///
    /// The publishing job does *not* hold a read lease afterwards; it should
    /// re-`get` (which will hit) if it needs the data — or use
    /// [`SlotCache::publish_and_read`] to do both atomically.
    pub fn publish(&mut self, slot: SlotIdx) -> Vec<W> {
        let state = std::mem::replace(&mut self.states[slot], SlotState::Empty);
        match state {
            SlotState::Writing { item, waiters } => {
                self.states[slot] = SlotState::Ready { item, readers: 0 };
                self.lru.push_front(slot);
                waiters
            }
            _ => panic!("publish on slot not in WRITE state"),
        }
    }

    /// Completes a load and immediately takes a read lease for the loader.
    pub fn publish_and_read(&mut self, slot: SlotIdx) -> Vec<W> {
        let waiters = self.publish(slot);
        match &mut self.states[slot] {
            SlotState::Ready { readers, .. } => {
                self.lru.remove(slot);
                *readers = 1;
            }
            _ => unreachable!(),
        }
        waiters
    }

    /// Aborts a load (e.g. storage failure): frees the slot and returns
    /// both the write-waiters and at most one capacity waiter to retry.
    pub fn abort(&mut self, slot: SlotIdx) -> Vec<W> {
        let state = std::mem::replace(&mut self.states[slot], SlotState::Empty);
        match state {
            SlotState::Writing { item, mut waiters } => {
                self.map.remove(item);
                self.free.push(slot);
                self.stats.aborts += 1;
                if let Some(w) = self.capacity_waiters.pop_front() {
                    waiters.push(w);
                }
                waiters
            }
            _ => panic!("abort on slot not in WRITE state"),
        }
    }

    /// Releases a read lease. When the last reader leaves, the slot becomes
    /// evictable and at most one capacity waiter is returned for retry.
    pub fn release(&mut self, slot: SlotIdx) -> Option<W> {
        match &mut self.states[slot] {
            SlotState::Ready { readers, .. } => {
                assert!(*readers > 0, "release without readers on slot {slot}");
                *readers -= 1;
                if *readers == 0 {
                    self.lru.push_front(slot);
                    return self.capacity_waiters.pop_front();
                }
                None
            }
            _ => panic!("release on slot not in READ state"),
        }
    }

    /// The item a slot currently holds (if any).
    pub fn slot_item(&self, slot: SlotIdx) -> Option<ItemId> {
        match &self.states[slot] {
            SlotState::Empty => None,
            SlotState::Writing { item, .. } | SlotState::Ready { item, .. } => Some(*item),
        }
    }

    /// Current reader count of a slot (0 for non-READ states).
    pub fn readers(&self, slot: SlotIdx) -> u32 {
        match &self.states[slot] {
            SlotState::Ready { readers, .. } => *readers,
            _ => 0,
        }
    }

    /// Items resident in READ state (for diagnostics / tests).
    pub fn resident_items(&self) -> Vec<ItemId> {
        let mut v: Vec<ItemId> = self
            .map
            .entries()
            .into_iter()
            .filter(|&(_, s)| matches!(self.states[s], SlotState::Ready { .. }))
            .map(|(i, _)| i)
            .collect();
        v.sort_unstable();
        v
    }

    /// Internal consistency check, used by property tests: every mapped item
    /// points at a slot holding it; LRU contains exactly the evictable
    /// slots; free slots are Empty.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (item, slot) in self.map.entries() {
            match &self.states[slot] {
                SlotState::Writing { item: it, .. } | SlotState::Ready { item: it, .. } => {
                    if *it != item {
                        return Err(format!(
                            "map says slot {slot} holds {item}, state says {it}"
                        ));
                    }
                }
                SlotState::Empty => return Err(format!("mapped slot {slot} is empty")),
            }
        }
        for slot in 0..self.capacity() {
            let evictable = matches!(self.states[slot], SlotState::Ready { readers: 0, .. });
            if evictable != self.lru.contains(slot) {
                return Err(format!(
                    "slot {slot}: evictable={evictable} but lru={}",
                    self.lru.contains(slot)
                ));
            }
            if self.free.contains(&slot) && !matches!(self.states[slot], SlotState::Empty) {
                return Err(format!("free slot {slot} is not empty"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Cache = SlotCache<u32>;

    fn must_load(c: &mut Cache, item: ItemId) -> SlotIdx {
        match c.get(item, || unreachable!()) {
            Lookup::MustLoad(s) => s,
            other => panic!("expected MustLoad, got {other:?}"),
        }
    }

    fn load_and_publish(c: &mut Cache, item: ItemId) -> SlotIdx {
        let s = must_load(c, item);
        assert!(c.publish(s).is_empty());
        s
    }

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(2);
        let s = load_and_publish(&mut c, 7);
        match c.get(7, || unreachable!()) {
            Lookup::Hit(hit) => assert_eq!(hit, s),
            other => panic!("{other:?}"),
        }
        c.release(s);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        c.check_invariants().unwrap();
    }

    #[test]
    fn pending_waiters_returned_on_publish() {
        let mut c = Cache::new(1);
        let s = must_load(&mut c, 1);
        assert_eq!(c.get(1, || 100), Lookup::Pending);
        assert_eq!(c.get(1, || 101), Lookup::Pending);
        let waiters = c.publish(s);
        assert_eq!(waiters, vec![100, 101]);
        // Waiters retry and hit.
        assert!(matches!(c.get(1, || unreachable!()), Lookup::Hit(_)));
        c.check_invariants().unwrap();
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = Cache::new(2);
        load_and_publish(&mut c, 1);
        load_and_publish(&mut c, 2);
        // Touch 1 so 2 becomes LRU.
        if let Lookup::Hit(s) = c.get(1, || unreachable!()) {
            c.release(s);
        } else {
            panic!();
        }
        must_load(&mut c, 3); // must evict item 2
        assert!(c.contains_ready(1));
        assert!(!c.contains_ready(2));
        assert_eq!(c.stats().evictions, 1);
        c.check_invariants().unwrap();
    }

    #[test]
    fn readers_pin_slots_against_eviction() {
        let mut c = Cache::new(1);
        let s = load_and_publish(&mut c, 1);
        let held = match c.get(1, || unreachable!()) {
            Lookup::Hit(h) => h,
            other => panic!("{other:?}"),
        };
        // Slot is pinned by the reader: a different item must stall.
        assert_eq!(c.get(2, || 55), Lookup::Busy);
        assert_eq!(c.stats().capacity_stalls, 1);
        // Releasing hands back the capacity waiter.
        assert_eq!(c.release(held), Some(55));
        assert_eq!(c.readers(s), 0); // publish itself never takes a lease
        c.check_invariants().unwrap();
    }

    #[test]
    fn publish_and_read_holds_lease() {
        let mut c = Cache::new(1);
        let s = must_load(&mut c, 1);
        assert!(c.publish_and_read(s).is_empty());
        assert_eq!(c.readers(s), 1);
        // Pinned: other items stall.
        assert_eq!(c.get(2, || 9), Lookup::Busy);
        assert_eq!(c.release(s), Some(9));
        c.check_invariants().unwrap();
    }

    #[test]
    fn abort_frees_slot_and_wakes() {
        let mut c = Cache::new(1);
        let s = must_load(&mut c, 1);
        assert_eq!(c.get(1, || 7), Lookup::Pending);
        assert_eq!(c.get(2, || 8), Lookup::Busy);
        let woken = c.abort(s);
        assert_eq!(woken, vec![7, 8]);
        assert!(!c.contains_ready(1));
        assert_eq!(c.stats().aborts, 1);
        // Slot is reusable.
        assert!(matches!(c.get(2, || unreachable!()), Lookup::MustLoad(_)));
        c.check_invariants().unwrap();
    }

    #[test]
    fn multiple_readers_counted() {
        let mut c = Cache::new(1);
        let s = load_and_publish(&mut c, 1);
        for expected in 1..=3 {
            assert!(matches!(c.get(1, || unreachable!()), Lookup::Hit(_)));
            assert_eq!(c.readers(s), expected);
        }
        for expected in (0..3).rev() {
            c.release(s);
            assert_eq!(c.readers(s), expected);
        }
        c.check_invariants().unwrap();
    }

    #[test]
    fn zero_capacity_always_busy() {
        let mut c = Cache::new(0);
        assert_eq!(c.get(1, || 1), Lookup::Busy);
    }

    #[test]
    #[should_panic(expected = "release without readers")]
    fn release_without_lease_panics() {
        let mut c = Cache::new(1);
        let s = load_and_publish(&mut c, 1);
        c.release(s);
    }

    #[test]
    fn resident_items_sorted() {
        let mut c = Cache::new(3);
        load_and_publish(&mut c, 5);
        load_and_publish(&mut c, 2);
        load_and_publish(&mut c, 9);
        assert_eq!(c.resident_items(), vec![2, 5, 9]);
    }

    #[test]
    fn try_read_takes_lease_only_when_ready() {
        let mut c = Cache::new(2);
        // Absent item: no side effects at all.
        assert_eq!(c.try_read(1), None);
        assert_eq!(c.stats().misses, 0);
        assert_eq!(c.occupied(), 0);
        // Writing item: not served.
        let s = must_load(&mut c, 1);
        assert_eq!(c.try_read(1), None);
        c.publish(s);
        // Ready item: lease taken and pins against eviction.
        let got = c.try_read(1).unwrap();
        assert_eq!(got, s);
        assert_eq!(c.readers(s), 1);
        c.release(s);
        c.check_invariants().unwrap();
    }

    #[test]
    fn occupied_tracks_usage() {
        let mut c = Cache::new(3);
        assert_eq!(c.occupied(), 0);
        load_and_publish(&mut c, 1);
        assert_eq!(c.occupied(), 1);
        let s = must_load(&mut c, 2);
        assert_eq!(c.occupied(), 2);
        c.abort(s);
        assert_eq!(c.occupied(), 1);
    }
}
