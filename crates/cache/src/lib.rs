//! Multi-level software caching for Rocket (§4.1 of the paper).
//!
//! Loading an item (`ℓ(i)`) is far more expensive than comparing two items
//! (`f(x, y)`) — 130 ms vs 1 ms for the paper's forensics application — so
//! Rocket caches load results at three levels of the distributed memory
//! hierarchy:
//!
//! 1. **device level** — per GPU, in device memory ([`SlotCache`] over device
//!    buffers),
//! 2. **host level** — per node, in page-locked host memory ([`SlotCache`]
//!    over host buffers), shared by all GPUs of the node,
//! 3. **cluster level** — a distributed lookup scheme ([`Directory`]) that
//!    lets a node fetch an item from a remote peer's host cache instead of
//!    re-executing the load pipeline.
//!
//! The slot cache implements the flow diagram of the paper's Fig 4: fixed
//! count of fixed-size slots, WRITE/READ states with reader counts, waiters
//! parked on in-flight writes, and LRU eviction. It is a *pure state
//! machine*: callers (the threaded runtime under a mutex, the discrete-event
//! simulator in virtual time) provide waiter tokens and deliver wake-ups,
//! which is what lets both execution engines share one policy implementation.

#![warn(missing_docs)]

pub mod directory;
pub mod fxhash;
pub mod lru;
pub mod slot;
pub mod stats;

pub use directory::{
    Directory, DirectoryMsg, DirectoryStats, HopChain, NodeId, Resolution, MAX_HOPS,
};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use lru::LruList;
pub use slot::{ItemId, Lookup, SlotCache, SlotIdx};
pub use stats::{CacheStats, ReuseStats};
