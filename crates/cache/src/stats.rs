//! Cache and data-reuse statistics.

/// Counters for one [`crate::SlotCache`] instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests satisfied by a READ slot immediately.
    pub hits: u64,
    /// Requests that found the item being written and had to wait.
    pub hits_pending: u64,
    /// Requests that missed and reserved a slot for loading.
    pub misses: u64,
    /// Requests that found no evictable slot and had to back off.
    pub capacity_stalls: u64,
    /// Occupied slots discarded to make room.
    pub evictions: u64,
    /// Writes aborted (load failures).
    pub aborts: u64,
}

impl CacheStats {
    /// Total requests observed (hits + pending hits + misses; capacity
    /// stalls are retried and counted again on the retry).
    pub fn requests(&self) -> u64 {
        self.hits + self.hits_pending + self.misses
    }

    /// Hit ratio over all requests, counting pending hits as hits (the data
    /// was present or in flight — no extra load was triggered).
    pub fn hit_ratio(&self) -> f64 {
        let req = self.requests();
        if req == 0 {
            0.0
        } else {
            (self.hits + self.hits_pending) as f64 / req as f64
        }
    }

    /// Adds another instance's counters (for per-node → cluster roll-ups).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.hits_pending += other.hits_pending;
        self.misses += other.misses;
        self.capacity_stalls += other.capacity_stalls;
        self.evictions += other.evictions;
        self.aborts += other.aborts;
    }
}

/// Tracks the paper's R metric: the number of load-pipeline executions
/// relative to the data-set size (§6.1). `R = 1` is perfect reuse: every
/// item loaded exactly once cluster-wide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Number of items in the data set (n).
    pub items: u64,
    /// Total executions of the load pipeline ℓ across all nodes.
    pub loads: u64,
}

impl ReuseStats {
    /// Creates reuse stats for a data set of `n` items.
    pub fn new(items: u64) -> Self {
        Self { items, loads: 0 }
    }

    /// Records one execution of ℓ.
    pub fn record_load(&mut self) {
        self.loads += 1;
    }

    /// The relative number of loads R = loads / n.
    pub fn r_factor(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.loads as f64 / self.items as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_counts_pending_as_hits() {
        let s = CacheStats {
            hits: 6,
            hits_pending: 2,
            misses: 2,
            ..Default::default()
        };
        assert_eq!(s.requests(), 10);
        assert!((s.hit_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_ratio_zero() {
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CacheStats {
            hits: 1,
            hits_pending: 2,
            misses: 3,
            capacity_stalls: 4,
            evictions: 5,
            aborts: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.hits, 2);
        assert_eq!(a.aborts, 12);
    }

    #[test]
    fn r_factor_basics() {
        let mut r = ReuseStats::new(100);
        for _ in 0..430 {
            r.record_load();
        }
        assert!((r.r_factor() - 4.3).abs() < 1e-12);
        assert_eq!(ReuseStats::new(0).r_factor(), 0.0);
    }
}
