//! The distributed-cache lookup scheme of §4.1.3.
//!
//! After a local (device + host) miss, a node asks the cluster whether any
//! peer's host cache holds the item, avoiding a re-execution of the load
//! pipeline. There is no central registry; instead the nodes form a light
//! distributed hash table:
//!
//! * item `i` is *mediated* by node `i mod p` — that node does not store the
//!   item, it only remembers the last `h` nodes that requested it (the
//!   `candidates` array),
//! * a request from node A goes to the mediator B, which prepends A to
//!   `candidates[i]` and forwards the probe to candidate C₁ (carrying the
//!   rest of the list),
//! * each candidate checks its host cache: hit → data goes straight to A;
//!   miss → forward to the next candidate; list exhausted → failure to A,
//!   upon which A executes `ℓ(i)` locally.
//!
//! Cost per request is at most `h + 2` messages. The scheme is *best
//! effort*: a failure is never incorrect, only a missed reuse opportunity.
//!
//! [`Directory`] implements one node's share of the protocol as a pure
//! message-driven state machine: `handle` consumes a message and returns the
//! messages to send next, with the local host-cache check abstracted as a
//! closure. Both the threaded runtime and the simulator drive it.

use std::collections::VecDeque;

use crate::fxhash::FxHashMap;

/// Cluster node identifier (rank), `0..p`.
pub type NodeId = usize;

/// Maximum probe depth `h` the protocol supports (and therefore the
/// longest candidate chain a [`DirectoryMsg::Probe`] ever carries inline).
///
/// The paper evaluates `h ∈ {1, 2, 3}` and runs production configurations
/// at `h = 1`; eight is comfortably above anything useful while keeping
/// probe messages heap-free.
pub const MAX_HOPS: usize = 8;

/// Inline, fixed-capacity candidate chain carried by probe messages.
///
/// Replaces the old `Vec<NodeId>` hop list: directory traffic is the
/// hottest message class of the simulator (and the only per-message heap
/// user), so the chain is stored in-message — `Copy`, no allocation, no
/// drop. Capacity is [`MAX_HOPS`] entries (the protocol itself only ever
/// needs `h − 1 ≤ MAX_HOPS − 1` for a probe's *rest* list, since the
/// first candidate is addressed directly); `push` beyond capacity
/// saturates, which is always legal because the protocol is best effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HopChain {
    len: u8,
    nodes: [u32; MAX_HOPS],
}

impl HopChain {
    /// An empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of candidates in the chain.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no candidates remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a candidate; silently drops it if the chain is full (the
    /// lookup then simply probes fewer peers — a missed-reuse, never an
    /// error).
    pub fn push(&mut self, node: NodeId) {
        if (self.len as usize) < MAX_HOPS {
            self.nodes[self.len as usize] = u32::try_from(node).expect("node id fits u32");
            self.len += 1;
        }
    }

    /// Removes and returns the first candidate.
    pub fn take_first(&mut self) -> Option<NodeId> {
        if self.len == 0 {
            return None;
        }
        let first = self.nodes[0] as NodeId;
        self.nodes.copy_within(1..self.len as usize, 0);
        self.len -= 1;
        // Clear the vacated slot: the derived `PartialEq` compares the
        // whole array, so a stale tail would make logically equal chains
        // (e.g. a forwarded probe vs its wire round-trip) compare unequal.
        self.nodes[self.len as usize] = 0;
        Some(first)
    }

    /// Iterates the candidates front to back.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[..self.len as usize].iter().map(|&n| n as NodeId)
    }
}

impl FromIterator<NodeId> for HopChain {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut chain = Self::new();
        for n in iter {
            chain.push(n);
        }
        chain
    }
}

/// Protocol messages. Data transfer itself is out of band: on a hit the
/// holder replies [`DirectoryMsg::Found`] and the caller moves the bytes
/// (the simulator charges the network model; the threaded runtime sends the
/// payload over the transport).
///
/// Messages are `Copy` — the probe candidate chain lives inline in a
/// [`HopChain`], so forwarding a message never touches the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectoryMsg {
    /// Requester → mediator: who has `item`?
    Request {
        /// The item being looked up.
        item: u64,
        /// The node that wants the item.
        requester: NodeId,
    },
    /// Mediator → candidate chain: check your host cache for `item`.
    Probe {
        /// The item being looked up.
        item: u64,
        /// The node that wants the item.
        requester: NodeId,
        /// Remaining candidates to try after the receiver.
        rest: HopChain,
        /// 1-based index of this probe in the chain (for Fig 11's
        /// hit-at-hop statistics).
        hop: u8,
    },
    /// Holder → requester: `holder`'s host cache has the item.
    Found {
        /// The item that was located.
        item: u64,
        /// The node that has the item (data comes from here).
        holder: NodeId,
        /// The hop at which the item was found.
        hop: u8,
    },
    /// Final candidate (or mediator with no candidates) → requester: the
    /// lookup failed; load locally.
    NotFound {
        /// The item that could not be located.
        item: u64,
    },
}

/// Per-node statistics of distributed-cache lookups (requester side counts
/// outcomes; Fig 11 plots their cluster-wide aggregate).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirectoryStats {
    /// Requests answered `Found`, indexed by hop (index 0 = first hop).
    pub hits_at_hop: Vec<u64>,
    /// Requests answered `NotFound`.
    pub misses: u64,
    /// Protocol messages this node sent (all roles).
    pub messages_sent: u64,
}

impl DirectoryStats {
    /// Total successful lookups.
    pub fn hits(&self) -> u64 {
        self.hits_at_hop.iter().sum()
    }

    /// Total lookups completed.
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses
    }

    /// Merges another node's counters.
    pub fn merge(&mut self, other: &DirectoryStats) {
        if self.hits_at_hop.len() < other.hits_at_hop.len() {
            self.hits_at_hop.resize(other.hits_at_hop.len(), 0);
        }
        for (i, &h) in other.hits_at_hop.iter().enumerate() {
            self.hits_at_hop[i] += h;
        }
        self.misses += other.misses;
        self.messages_sent += other.messages_sent;
    }

    fn record_hit(&mut self, hop: u8) {
        let idx = hop.max(1) as usize - 1;
        if self.hits_at_hop.len() <= idx {
            self.hits_at_hop.resize(idx + 1, 0);
        }
        self.hits_at_hop[idx] += 1;
    }
}

/// One node's view of the distributed cache directory.
#[derive(Debug)]
pub struct Directory {
    node: NodeId,
    nodes: usize,
    h: usize,
    candidates: FxHashMap<u64, VecDeque<NodeId>>,
    stats: DirectoryStats,
}

/// Outcome of handling a message locally (returned alongside outgoing
/// messages): the requester learns its lookup resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Still in flight.
    InFlight,
    /// The item is available at `holder` (hop recorded for stats).
    Found {
        /// Node holding the item.
        holder: NodeId,
        /// Hop at which it was found.
        hop: u8,
    },
    /// Nobody had it: execute ℓ locally.
    LoadLocally,
}

impl Directory {
    /// Creates the directory shard for `node` in a cluster of `nodes` nodes
    /// with maximum probe depth `h` (`1 ≤ h ≤` [`MAX_HOPS`]; larger values
    /// are clamped — probe chains are carried inline and the paper shows
    /// hops beyond the first contribute almost nothing).
    pub fn new(node: NodeId, nodes: usize, h: usize) -> Self {
        assert!(nodes > 0, "cluster must have at least one node");
        assert!(node < nodes, "node id out of range");
        assert!(h >= 1, "h must be at least 1");
        Self {
            node,
            nodes,
            h: h.min(MAX_HOPS),
            candidates: FxHashMap::default(),
            stats: DirectoryStats::default(),
        }
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The mediator responsible for `item` (`item mod p`).
    pub fn mediator(&self, item: u64) -> NodeId {
        (item % self.nodes as u64) as usize
    }

    /// Requester-side statistics.
    pub fn stats(&self) -> &DirectoryStats {
        &self.stats
    }

    /// Number of items this node currently mediates.
    pub fn mediated_items(&self) -> usize {
        self.candidates.len()
    }

    /// Starts a lookup for `item`: returns the message to send (possibly to
    /// this very node — the driver must deliver self-addressed messages).
    pub fn begin_lookup(&mut self, item: u64) -> (NodeId, DirectoryMsg) {
        self.stats.messages_sent += 1;
        (
            self.mediator(item),
            DirectoryMsg::Request {
                item,
                requester: self.node,
            },
        )
    }

    /// Handles an incoming protocol message.
    ///
    /// `host_has` tells whether this node's host cache currently holds an
    /// item (in READ state). Returns messages to forward plus, when this
    /// node is the requester and the lookup terminated, the [`Resolution`].
    pub fn handle(
        &mut self,
        msg: DirectoryMsg,
        host_has: impl FnOnce(u64) -> bool,
    ) -> (Vec<(NodeId, DirectoryMsg)>, Resolution) {
        match msg {
            DirectoryMsg::Request { item, requester } => {
                debug_assert_eq!(
                    self.mediator(item),
                    self.node,
                    "request routed to wrong mediator"
                );
                let chain: HopChain = self
                    .candidates
                    .get(&item)
                    .map(|c| c.iter().copied().collect())
                    .unwrap_or_default();
                // Remember the requester: it will soon hold the item (it
                // either fetches it or loads it) — the freshest candidate.
                let entry = self.candidates.entry(item).or_default();
                entry.retain(|&n| n != requester);
                entry.push_front(requester);
                entry.truncate(self.h);
                // Skip the requester itself: probing A for A's own request
                // is allowed by the paper but always useless.
                let mut chain: HopChain = chain.iter().filter(|&n| n != requester).collect();
                match chain.take_first() {
                    Some(first) => {
                        let rest: HopChain = chain.iter().take(self.h.saturating_sub(1)).collect();
                        self.stats.messages_sent += 1;
                        (
                            vec![(
                                first,
                                DirectoryMsg::Probe {
                                    item,
                                    requester,
                                    rest,
                                    hop: 1,
                                },
                            )],
                            Resolution::InFlight,
                        )
                    }
                    None => {
                        self.stats.messages_sent += 1;
                        (
                            vec![(requester, DirectoryMsg::NotFound { item })],
                            Resolution::InFlight,
                        )
                    }
                }
            }
            DirectoryMsg::Probe {
                item,
                requester,
                mut rest,
                hop,
            } => {
                if host_has(item) {
                    self.stats.messages_sent += 1;
                    return (
                        vec![(
                            requester,
                            DirectoryMsg::Found {
                                item,
                                holder: self.node,
                                hop,
                            },
                        )],
                        Resolution::InFlight,
                    );
                }
                if rest.is_empty() || (hop as usize) >= self.h {
                    self.stats.messages_sent += 1;
                    return (
                        vec![(requester, DirectoryMsg::NotFound { item })],
                        Resolution::InFlight,
                    );
                }
                let next = rest.take_first().expect("chain non-empty");
                self.stats.messages_sent += 1;
                (
                    vec![(
                        next,
                        DirectoryMsg::Probe {
                            item,
                            requester,
                            rest,
                            hop: hop + 1,
                        },
                    )],
                    Resolution::InFlight,
                )
            }
            DirectoryMsg::Found { holder, hop, .. } => {
                self.stats.record_hit(hop);
                (Vec::new(), Resolution::Found { holder, hop })
            }
            DirectoryMsg::NotFound { .. } => {
                self.stats.misses += 1;
                (Vec::new(), Resolution::LoadLocally)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Drives a full lookup across an in-memory cluster of directories.
    /// `holders` is the set of nodes whose host cache has the item.
    fn run_lookup(
        dirs: &mut [Directory],
        requester: NodeId,
        item: u64,
        holders: &HashSet<NodeId>,
    ) -> (Resolution, u64) {
        let mut messages = 0u64;
        let (mut to, mut msg) = dirs[requester].begin_lookup(item);
        messages += 1;
        loop {
            let has = holders.contains(&to);
            let (outgoing, res) = dirs[to].handle(msg, |_| has);
            if to == requester && res != Resolution::InFlight {
                return (res, messages);
            }
            assert_eq!(outgoing.len(), 1, "protocol fan-out must be 1");
            let (next_to, next_msg) = outgoing.into_iter().next().unwrap();
            messages += 1;
            to = next_to;
            msg = next_msg;
        }
    }

    fn cluster(p: usize, h: usize) -> Vec<Directory> {
        (0..p).map(|n| Directory::new(n, p, h)).collect()
    }

    #[test]
    fn first_lookup_fails_cleanly() {
        let mut dirs = cluster(4, 3);
        let (res, msgs) = run_lookup(&mut dirs, 1, 6, &HashSet::new());
        assert_eq!(res, Resolution::LoadLocally);
        // Request + NotFound = 2 messages when there are no candidates.
        assert_eq!(msgs, 2);
        assert_eq!(dirs[1].stats().misses, 1);
    }

    #[test]
    fn second_requester_finds_first() {
        let mut dirs = cluster(4, 3);
        // Node 1 looks up item 6 (mediator = node 2), fails, loads locally.
        let holders = HashSet::new();
        let (res, _) = run_lookup(&mut dirs, 1, 6, &holders);
        assert_eq!(res, Resolution::LoadLocally);
        // Now node 1 holds item 6. Node 3 asks.
        let holders: HashSet<NodeId> = [1].into_iter().collect();
        let (res, msgs) = run_lookup(&mut dirs, 3, 6, &holders);
        assert_eq!(res, Resolution::Found { holder: 1, hop: 1 });
        // Request + Probe + Found = 3 messages.
        assert_eq!(msgs, 3);
        assert_eq!(dirs[3].stats().hits_at_hop, vec![1]);
    }

    #[test]
    fn probes_walk_the_candidate_chain() {
        let mut dirs = cluster(8, 3);
        let item = 5; // mediator = node 5
                      // Nodes 1, 2, 3 request in order; none hold it yet.
        for n in [1, 2, 3] {
            let (res, _) = run_lookup(&mut dirs, n, item, &HashSet::new());
            // Candidates accumulate, but nobody has the item: all miss.
            assert_eq!(res, Resolution::LoadLocally, "node {n}");
        }
        // candidates[5] should now be [3, 2, 1]. Only node 1 has the item:
        // hit at hop 3.
        let holders: HashSet<NodeId> = [1].into_iter().collect();
        let (res, msgs) = run_lookup(&mut dirs, 6, item, &holders);
        assert_eq!(res, Resolution::Found { holder: 1, hop: 3 });
        // h + 2 = 5 messages: Request, 3 probes, Found.
        assert_eq!(msgs, 5);
    }

    #[test]
    fn at_most_h_plus_2_messages() {
        let h = 3;
        let mut dirs = cluster(8, h);
        let item = 2;
        // Saturate the candidate list beyond h.
        for n in [1, 3, 4, 5, 6, 7] {
            let _ = run_lookup(&mut dirs, n, item, &HashSet::new());
        }
        // No holders: worst case walks the full chain.
        let (res, msgs) = run_lookup(&mut dirs, 0, item, &HashSet::new());
        assert_eq!(res, Resolution::LoadLocally);
        assert!(msgs <= (h as u64) + 2, "used {msgs} messages");
    }

    #[test]
    fn candidate_list_bounded_by_h() {
        let h = 2;
        let mut dirs = cluster(4, h);
        let item = 1; // mediator node 1
        for n in [0, 2, 3, 0, 2] {
            let _ = run_lookup(&mut dirs, n, item, &HashSet::new());
        }
        assert!(dirs[1].candidates.get(&item).unwrap().len() <= h);
    }

    #[test]
    fn requester_not_probed_for_own_request() {
        let mut dirs = cluster(4, 3);
        let item = 6; // mediator 2
                      // Node 1 requests twice; second time the candidate list contains
                      // node 1 itself, which must be skipped (hitting our own cache after
                      // a local miss is pointless).
        let _ = run_lookup(&mut dirs, 1, item, &HashSet::new());
        let holders: HashSet<NodeId> = [1].into_iter().collect(); // 1 has it but is asking again
        let (res, _) = run_lookup(&mut dirs, 1, item, &holders);
        assert_eq!(res, Resolution::LoadLocally);
    }

    #[test]
    fn mediator_can_be_requester() {
        let mut dirs = cluster(4, 3);
        let item = 8; // mediator = 0
        let (res, _) = run_lookup(&mut dirs, 0, item, &HashSet::new());
        assert_eq!(res, Resolution::LoadLocally);
        // Another node loads it, then 0 asks again and finds it.
        let _ = run_lookup(&mut dirs, 2, item, &HashSet::new());
        let holders: HashSet<NodeId> = [2].into_iter().collect();
        let (res, _) = run_lookup(&mut dirs, 0, item, &holders);
        assert_eq!(res, Resolution::Found { holder: 2, hop: 1 });
    }

    #[test]
    fn single_node_cluster_degenerates_gracefully() {
        let mut dirs = cluster(1, 3);
        let (res, msgs) = run_lookup(&mut dirs, 0, 0, &HashSet::new());
        assert_eq!(res, Resolution::LoadLocally);
        assert_eq!(msgs, 2);
    }

    #[test]
    fn stats_merge() {
        let mut a = DirectoryStats {
            hits_at_hop: vec![3, 1],
            misses: 2,
            messages_sent: 10,
        };
        let b = DirectoryStats {
            hits_at_hop: vec![1, 0, 4],
            misses: 1,
            messages_sent: 7,
        };
        a.merge(&b);
        assert_eq!(a.hits_at_hop, vec![4, 1, 4]);
        assert_eq!(a.hits(), 9);
        assert_eq!(a.misses, 3);
        assert_eq!(a.lookups(), 12);
        assert_eq!(a.messages_sent, 17);
    }

    #[test]
    fn hop_chain_push_take_order() {
        let mut c = HopChain::new();
        assert!(c.is_empty());
        for n in [3usize, 1, 4, 1, 5] {
            c.push(n);
        }
        assert_eq!(c.len(), 5);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![3, 1, 4, 1, 5]);
        assert_eq!(c.take_first(), Some(3));
        assert_eq!(c.take_first(), Some(1));
        assert_eq!(c.len(), 3);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![4, 1, 5]);
    }

    #[test]
    fn hop_chain_saturates_at_capacity() {
        let mut c = HopChain::new();
        for n in 0..(MAX_HOPS + 5) {
            c.push(n);
        }
        assert_eq!(c.len(), MAX_HOPS);
        assert_eq!(c.iter().last(), Some(MAX_HOPS - 1));
        // Draining works all the way down.
        let mut drained = Vec::new();
        while let Some(n) = c.take_first() {
            drained.push(n);
        }
        assert_eq!(drained, (0..MAX_HOPS).collect::<Vec<_>>());
        assert_eq!(c.take_first(), None);
    }

    #[test]
    fn hop_chain_equality_ignores_consumed_prefix() {
        // Regression: take_first must not leave stale tail garbage that
        // the derived PartialEq would compare (forwarded probes vs their
        // wire round-trips must stay equal).
        let mut advanced: HopChain = [9usize, 2, 3].into_iter().collect();
        assert_eq!(advanced.take_first(), Some(9));
        let fresh: HopChain = [2usize, 3].into_iter().collect();
        assert_eq!(advanced, fresh);
    }

    #[test]
    fn oversized_h_is_clamped() {
        let d = Directory::new(0, 4, 100);
        assert_eq!(d.h, MAX_HOPS);
    }

    #[test]
    fn mediator_assignment_is_mod_p() {
        let d = Directory::new(0, 5, 1);
        assert_eq!(d.mediator(0), 0);
        assert_eq!(d.mediator(7), 2);
        assert_eq!(d.mediator(14), 4);
    }

    #[test]
    fn lru_order_of_candidates_prefers_recent() {
        let mut dirs = cluster(8, 2);
        let item = 5;
        let _ = run_lookup(&mut dirs, 1, item, &HashSet::new());
        let _ = run_lookup(&mut dirs, 2, item, &HashSet::new());
        // Both 1 and 2 hold it; most recent requester (2) must be probed
        // first and answer at hop 1.
        let holders: HashSet<NodeId> = [1, 2].into_iter().collect();
        let (res, _) = run_lookup(&mut dirs, 3, item, &holders);
        assert_eq!(res, Resolution::Found { holder: 2, hop: 1 });
    }
}
