//! Intrusive O(1) LRU list over slot indices.
//!
//! The cache-size sweep of the paper's Fig 9 reaches millions of slots for
//! the microscopy application, so eviction must not scan: this list gives
//! O(1) touch / remove / evict using `Vec`-backed prev/next links.

const NIL: usize = usize::MAX;

/// Doubly-linked LRU list over indices `0..capacity`.
///
/// Front = most recently used; back = least recently used (eviction victim).
#[derive(Debug, Clone)]
pub struct LruList {
    prev: Vec<usize>,
    next: Vec<usize>,
    in_list: Vec<bool>,
    head: usize,
    tail: usize,
    len: usize,
}

impl LruList {
    /// Creates an empty list able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            prev: vec![NIL; capacity],
            next: vec![NIL; capacity],
            in_list: vec![false; capacity],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of indices currently in the list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `idx` is currently linked.
    pub fn contains(&self, idx: usize) -> bool {
        self.in_list[idx]
    }

    /// Links `idx` at the front (most recently used). Panics if linked.
    pub fn push_front(&mut self, idx: usize) {
        assert!(!self.in_list[idx], "index {idx} already in LRU list");
        self.prev[idx] = NIL;
        self.next[idx] = self.head;
        if self.head != NIL {
            self.prev[self.head] = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
        self.in_list[idx] = true;
        self.len += 1;
    }

    /// Unlinks `idx`. Panics if not linked.
    pub fn remove(&mut self, idx: usize) {
        assert!(self.in_list[idx], "index {idx} not in LRU list");
        let (p, n) = (self.prev[idx], self.next[idx]);
        if p != NIL {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
        self.prev[idx] = NIL;
        self.next[idx] = NIL;
        self.in_list[idx] = false;
        self.len -= 1;
    }

    /// Unlinks and returns the least-recently-used index, if any.
    pub fn pop_back(&mut self) -> Option<usize> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        self.remove(idx);
        Some(idx)
    }

    /// Moves `idx` to the front (marks it most recently used).
    pub fn touch(&mut self, idx: usize) {
        if self.in_list[idx] {
            self.remove(idx);
        }
        self.push_front(idx);
    }

    /// Iterates indices from most- to least-recently used (for testing).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let out = cur;
                cur = self.next[cur];
                Some(out)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_pop_order() {
        let mut l = LruList::new(4);
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        // 0 is least recently used.
        assert_eq!(l.pop_back(), Some(0));
        assert_eq!(l.pop_back(), Some(1));
        assert_eq!(l.pop_back(), Some(2));
        assert_eq!(l.pop_back(), None);
    }

    #[test]
    fn touch_moves_to_front() {
        let mut l = LruList::new(3);
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        l.touch(0); // 0 becomes MRU; 1 is now LRU.
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![0, 2, 1]);
        assert_eq!(l.pop_back(), Some(1));
    }

    #[test]
    fn remove_middle() {
        let mut l = LruList::new(3);
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        l.remove(1);
        assert!(!l.contains(1));
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![2, 0]);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn remove_head_and_tail() {
        let mut l = LruList::new(2);
        l.push_front(0);
        l.push_front(1);
        l.remove(1); // head
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![0]);
        l.remove(0); // tail == head
        assert!(l.is_empty());
    }

    #[test]
    #[should_panic(expected = "already in LRU list")]
    fn double_push_panics() {
        let mut l = LruList::new(1);
        l.push_front(0);
        l.push_front(0);
    }

    #[test]
    #[should_panic(expected = "not in LRU list")]
    fn remove_unlinked_panics() {
        let mut l = LruList::new(1);
        l.remove(0);
    }

    #[test]
    fn reuse_after_pop() {
        let mut l = LruList::new(2);
        l.push_front(0);
        assert_eq!(l.pop_back(), Some(0));
        l.push_front(0);
        assert!(l.contains(0));
        assert_eq!(l.len(), 1);
    }
}
