//! Deterministic fast hashing for item-keyed tables.
//!
//! The slot cache and directory key their maps by small integer ids (item
//! ids, slot indices) on paths executed once or more per simulated event.
//! `std`'s default SipHash is DoS-resistant but an order of magnitude
//! slower than needed for trusted integer keys, and its per-map random
//! seed makes map internals differ run to run. [`FxHasher`] (the
//! Firefox/rustc polynomial hash) is deterministic and compiles to a few
//! multiply/rotate instructions per word — ideal for the simulator's
//! hot path, and harmless for the threaded runtime (keys are internal ids,
//! never attacker-controlled).

use std::hash::{BuildHasherDefault, Hasher};

/// The rustc/Firefox "Fx" hash: word-at-a-time multiply-rotate.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s; plug into `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the deterministic fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        let hashes: Vec<u64> = (0..1000).map(hash).collect();
        let mut unique = hashes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), hashes.len(), "collision among small keys");
    }

    #[test]
    fn byte_stream_matches_any_chunking() {
        // write() must be consistent for the same logical bytes.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn fx_hash_map_works() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
    }
}
