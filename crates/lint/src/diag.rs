//! Diagnostics: stable codes, deterministic ordering, human and JSON
//! rendering.

/// One finding. `suppressed` findings are reported (for audit) but do
/// not fail the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, e.g. `RL-D001`.
    pub code: &'static str,
    /// Rule family: `determinism`, `panic-path`, `lock-order`,
    /// `wire-drift`.
    pub rule: &'static str,
    /// Path relative to the lint root.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    /// Excused by a `lint:allow` marker or an `allow_files` entry.
    pub suppressed: bool,
}

/// Sorts diagnostics into the canonical (path, line, code) order.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.code).cmp(&(b.path.as_str(), b.line, b.code)));
}

/// Renders one diagnostic for terminals.
pub fn render_human(d: &Diagnostic) -> String {
    let mark = if d.suppressed { " (suppressed)" } else { "" };
    format!(
        "{}: {}:{}: [{}] {}{}",
        d.code, d.path, d.line, d.rule, d.message, mark
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Version of the JSON report format. Bumped on any structural change
/// to `render_json` output so downstream tooling (the CI artifact
/// check, the perf-log parser's sibling) can detect drift instead of
/// misparsing. History: 1 = PR 6 original (no schema field), 2 = this
/// field added.
pub const SCHEMA: u32 = 2;

/// Renders the full report as a stable JSON document.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let unsuppressed = diags.iter().filter(|d| !d.suppressed).count();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": {SCHEMA},\n"));
    out.push_str(&format!("  \"total\": {},\n", diags.len()));
    out.push_str(&format!("  \"unsuppressed\": {unsuppressed},\n"));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"code\": \"{}\", ", json_escape(d.code)));
        out.push_str(&format!("\"rule\": \"{}\", ", json_escape(d.rule)));
        out.push_str(&format!("\"path\": \"{}\", ", json_escape(&d.path)));
        out.push_str(&format!("\"line\": {}, ", d.line));
        out.push_str(&format!("\"suppressed\": {}, ", d.suppressed));
        out.push_str(&format!("\"message\": \"{}\"", json_escape(&d.message)));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(code: &'static str, path: &str, line: u32) -> Diagnostic {
        Diagnostic {
            code,
            rule: "determinism",
            path: path.into(),
            line,
            message: "msg with \"quotes\"".into(),
            suppressed: false,
        }
    }

    #[test]
    fn sort_is_path_line_code() {
        let mut v = vec![
            d("RL-D002", "b.rs", 1),
            d("RL-D001", "a.rs", 9),
            d("RL-D001", "a.rs", 2),
        ];
        sort(&mut v);
        assert_eq!(
            v.iter()
                .map(|x| (x.path.clone(), x.line))
                .collect::<Vec<_>>(),
            [
                ("a.rs".to_string(), 2),
                ("a.rs".to_string(), 9),
                ("b.rs".to_string(), 1)
            ]
        );
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut one = d("RL-D001", "a.rs", 1);
        one.suppressed = true;
        let json = render_json(&[one, d("RL-D002", "b.rs", 3)]);
        assert!(json.starts_with("{\n  \"schema\": 2,"));
        assert!(json.contains("\"total\": 2"));
        assert!(json.contains("\"unsuppressed\": 1"));
        assert!(json.contains("msg with \\\"quotes\\\""));
    }

    #[test]
    fn empty_report_is_valid() {
        let json = render_json(&[]);
        assert!(json.contains("\"diagnostics\": []"));
        assert!(json.contains("\"total\": 0"));
    }
}
