//! Item-level structure recovered from the token stream: which tokens
//! belong to test code, and where function bodies begin and end.

use crate::lexer::{Lexed, Tok, TokKind};

/// A loaded, lexed source file plus derived structure.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as reported in diagnostics (relative to the lint root).
    pub rel_path: String,
    pub lexed: Lexed,
    /// `mask[i]` is true when token `i` lies inside test-only code
    /// (a `#[cfg(test)]` module or a `#[test]` function).
    pub test_mask: Vec<bool>,
}

/// One function body: name plus the token range of its `{ ... }` block
/// (inclusive of the braces).
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    pub body_start: usize,
    pub body_end: usize,
    pub line: u32,
}

impl SourceFile {
    pub fn new(rel_path: String, src: &str) -> Self {
        let lexed = crate::lexer::lex(src);
        let test_mask = test_mask(&lexed.toks);
        SourceFile {
            rel_path,
            lexed,
            test_mask,
        }
    }

    /// Whether token `i` is test-only code.
    pub fn is_test(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// Non-test function bodies in the file.
    pub fn fns(&self) -> Vec<FnSpan> {
        fn_spans(&self.lexed.toks)
            .into_iter()
            .filter(|f| !self.is_test(f.body_start))
            .collect()
    }
}

/// Index of the token matching the opener at `open` (`{`/`}`, `[`/`]`,
/// `(`/`)`), or the last token if unbalanced.
pub fn matching(toks: &[Tok], open: usize, open_ch: &str, close_ch: &str) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == open_ch {
                depth += 1;
            } else if t.text == close_ch {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Marks tokens covered by `#[cfg(test)] mod`/`#[test] fn` items.
///
/// The heuristic: any attribute `#[...]` whose bracket contents mention
/// the identifier `test` marks the next item (after any further
/// attributes) as test code, through the end of its brace block.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[") {
            let close = matching(toks, i + 1, "[", "]");
            let mentions_test = toks[i + 2..close].iter().any(|t| t.text == "test");
            if mentions_test {
                // Skip over any further attributes to the item keyword.
                let mut j = close + 1;
                while j < toks.len()
                    && toks[j].text == "#"
                    && toks.get(j + 1).is_some_and(|t| t.text == "[")
                {
                    j = matching(toks, j + 1, "[", "]") + 1;
                }
                // Find the item's opening brace (or `;` for `mod x;`).
                let mut k = j;
                while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
                    k += 1;
                }
                if k < toks.len() && toks[k].text == "{" {
                    let end = matching(toks, k, "{", "}");
                    for slot in mask.iter_mut().take(end + 1).skip(i) {
                        *slot = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Extracts `fn name ... { body }` spans (all of them; callers filter by
/// test mask). Trait-method declarations without bodies are skipped.
/// Named closures with block bodies (`let worker = move |x| { ... };`)
/// are picked up too, so graph passes can treat them as functions —
/// the steal pool's worker loop lives in one.
fn fn_spans(toks: &[Tok]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "let" {
            if let Some(span) = closure_span(toks, i) {
                out.push(span);
                // Continue scanning *inside* the closure body (nested
                // lets, nested closures).
                i += 2;
                continue;
            }
        }
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" {
            let Some(name_tok) = toks.get(i + 1) else {
                break;
            };
            if name_tok.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            // Scan the signature for `{` (body) or `;` (declaration).
            // Parentheses are skipped wholesale so closures or default
            // expressions inside the argument list cannot confuse us.
            let mut j = i + 2;
            let mut open = None;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" => j = matching(toks, j, "(", ")") + 1,
                    "{" => {
                        open = Some(j);
                        break;
                    }
                    ";" => break,
                    _ => j += 1,
                }
            }
            if let Some(open) = open {
                let end = matching(toks, open, "{", "}");
                out.push(FnSpan {
                    name: name_tok.text.clone(),
                    body_start: open,
                    body_end: end,
                    line: toks[i].line,
                });
                // Continue *inside* the body too: nested fns are rare but
                // cheap to pick up.
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Matches `let [mut] NAME = [move] |params| [-> Ty] { body }` starting
/// at the `let` token. Only block-bodied closures count: an expression
/// body has no brace span to attribute steps to.
fn closure_span(toks: &[Tok], let_idx: usize) -> Option<FnSpan> {
    let mut j = let_idx + 1;
    if toks.get(j).is_some_and(|t| t.text == "mut") {
        j += 1;
    }
    let name_tok = toks.get(j)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    let line = toks[let_idx].line;
    j += 1;
    if toks.get(j)?.text != "=" {
        return None;
    }
    j += 1;
    if toks.get(j).is_some_and(|t| t.text == "move") {
        j += 1;
    }
    // `||` lexes as two `|` puncts; `|args|` starts with one.
    if toks.get(j)?.text != "|" {
        return None;
    }
    // Find the closing `|` of the parameter list (skip bracket groups so
    // pattern params like `|(a, b)|` cannot confuse us).
    let mut k = j + 1;
    loop {
        let t = toks.get(k)?;
        match t.text.as_str() {
            "|" => break,
            "(" => k = matching(toks, k, "(", ")") + 1,
            "[" => k = matching(toks, k, "[", "]") + 1,
            // A `{`, `;` or `=` before the closing `|` means this was a
            // bitwise-or expression, not a closure.
            "{" | ";" | "=" => return None,
            _ => k += 1,
        }
    }
    // Optional `-> Ty`, then the opening brace must follow directly.
    let mut m = k + 1;
    if toks.get(m).is_some_and(|t| t.text == "-") && toks.get(m + 1).is_some_and(|t| t.text == ">")
    {
        m += 2;
        while m < toks.len() && toks[m].text != "{" {
            if matches!(toks[m].text.as_str(), ";" | "|" | ")" | "}") {
                return None;
            }
            m += 1;
        }
    }
    if toks.get(m)?.text != "{" {
        return None;
    }
    let end = matching(toks, m, "{", "}");
    Some(FnSpan {
        name,
        body_start: m,
        body_end: end,
        line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn helper() { y.unwrap(); }\n}\nfn live2() {}\n";
        let f = SourceFile::new("a.rs".into(), src);
        let toks = &f.lexed.toks;
        let live = toks.iter().position(|t| t.text == "live").unwrap();
        let helper = toks.iter().position(|t| t.text == "helper").unwrap();
        let live2 = toks.iter().position(|t| t.text == "live2").unwrap();
        assert!(!f.is_test(live));
        assert!(f.is_test(helper));
        assert!(!f.is_test(live2));
    }

    #[test]
    fn test_attr_fn_is_masked() {
        let src = "#[test]\nfn check() { assert!(true); }\nfn real() {}\n";
        let f = SourceFile::new("a.rs".into(), src);
        let toks = &f.lexed.toks;
        let check = toks.iter().position(|t| t.text == "check").unwrap();
        let real = toks.iter().position(|t| t.text == "real").unwrap();
        assert!(f.is_test(check));
        assert!(!f.is_test(real));
    }

    #[test]
    fn non_test_attrs_do_not_mask() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() {}\n";
        let f = SourceFile::new("a.rs".into(), src);
        assert!(f.test_mask.iter().all(|&m| !m));
    }

    #[test]
    fn fn_spans_found_with_names() {
        let src = "fn alpha() { beta(); }\nimpl T { fn beta(&self) -> u32 { 1 } }\ntrait Q { fn decl(&self); }\n";
        let f = SourceFile::new("a.rs".into(), src);
        let names: Vec<_> = f.fns().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["alpha", "beta"]);
    }

    #[test]
    fn named_block_closures_become_spans() {
        let src = "fn run() {\n    let worker = move |ix: usize| -> u32 {\n        work(ix)\n    };\n    let sum = a | b;\n    let alias = &worker;\n    let expr_body = |x| x + 1;\n}\n";
        let f = SourceFile::new("a.rs".into(), src);
        let names: Vec<_> = f.fns().into_iter().map(|s| s.name).collect();
        // Only the block-bodied closure: bitwise-or, reference aliases and
        // expression-bodied closures are not spans.
        assert_eq!(names, ["run", "worker"]);
    }

    #[test]
    fn closure_with_pattern_params() {
        let src = "fn f() { let each = |(a, b): (u32, u32)| { a + b }; }\n";
        let f = SourceFile::new("a.rs".into(), src);
        let names: Vec<_> = f.fns().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["f", "each"]);
    }

    #[test]
    fn test_fns_excluded_from_fns() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() {} }\n";
        let f = SourceFile::new("a.rs".into(), src);
        let names: Vec<_> = f.fns().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["live"]);
    }
}
