//! A hand-rolled Rust tokenizer — just enough lexical structure for the
//! lint rules, with no dependency on `syn` or the compiler.
//!
//! The lexer understands comments (line and nested block), string/char
//! literals (including raw and byte strings), lifetimes, identifiers,
//! numbers, and single-character punctuation. Multi-character operators
//! come out as punctuation sequences (`::` is two `:` tokens); rules
//! match on token-text sequences, so this costs nothing.
//!
//! Comments are not tokens, but `lint:allow(...)` markers inside them are
//! extracted as [`Suppression`]s.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Lifetime,
    Num,
    Str,
    Char,
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// A `lint:allow(rule, ...)` marker found in a comment.
///
/// A suppression covers the line the marker sits on and — so that a
/// multi-line rationale comment can precede the code it excuses — the
/// first line after the marker that carries any token.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line of the comment containing the marker.
    pub line: u32,
    /// First token-bearing line at or after `line` (the code the marker
    /// excuses). Equal to `line` when the marker trails code.
    pub covers: u32,
    /// Rule families or diagnostic codes named in the marker.
    pub rules: Vec<String>,
}

impl Suppression {
    /// Whether this suppression excuses a diagnostic of the given rule
    /// family / code at `line`.
    pub fn matches(&self, line: u32, rule: &str, code: &str) -> bool {
        (line == self.line || line == self.covers)
            && self
                .rules
                .iter()
                .any(|r| r == rule || r == code || r == "all")
    }
}

/// Token stream plus suppression markers for one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub suppressions: Vec<Suppression>,
}

impl Lexed {
    /// Whether a diagnostic (`rule`, `code`) at `line` is suppressed.
    pub fn suppressed(&self, line: u32, rule: &str, code: &str) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.matches(line, rule, code))
    }
}

/// Extracts the rule list from a comment body containing `lint:allow(`.
fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let start = comment.find("lint:allow(")?;
    let rest = &comment[start + "lint:allow(".len()..];
    let end = rest.find(')')?;
    let rules: Vec<String> = rest[..end]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

/// Tokenizes `src`, collecting suppressions along the way.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut suppressions: Vec<Suppression> = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! bump_lines {
        ($s:expr) => {
            line += $s.bytes().filter(|&b| b == b'\n').count() as u32
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            let end = src[i..].find('\n').map(|n| i + n).unwrap_or(bytes.len());
            if let Some(rules) = parse_allow(&src[i..end]) {
                suppressions.push(Suppression {
                    line,
                    covers: line,
                    rules,
                });
            }
            i = end;
            continue;
        }
        // Block comment (nested).
        if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            let start_line = line;
            let mut depth = 1usize;
            let mut j = i + 2;
            while j + 1 < bytes.len() && depth > 0 {
                if bytes[j] == b'/' && bytes[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && bytes[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            if depth > 0 {
                j = bytes.len();
            }
            let body = &src[i..j.min(bytes.len())];
            if let Some(rules) = parse_allow(body) {
                suppressions.push(Suppression {
                    line: start_line,
                    covers: start_line,
                    rules,
                });
            }
            bump_lines!(body);
            i = j;
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br#"..."# (any hash count).
        if c == 'r' || c == 'b' {
            let mut j = i;
            if bytes[j] == b'b' {
                j += 1;
            }
            if bytes.get(j) == Some(&b'r') {
                let mut hashes = 0usize;
                let mut k = j + 1;
                while bytes.get(k) == Some(&b'#') {
                    hashes += 1;
                    k += 1;
                }
                if bytes.get(k) == Some(&b'"') {
                    // Find closing `"` + hashes.
                    let close = format!("\"{}", "#".repeat(hashes));
                    let body_start = k + 1;
                    let end = src[body_start..]
                        .find(&close)
                        .map(|n| body_start + n + close.len())
                        .unwrap_or(bytes.len());
                    let text = &src[i..end];
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: text.to_string(),
                        line,
                    });
                    bump_lines!(text);
                    i = end;
                    continue;
                }
                // Raw identifier: `r#ident` (exactly one hash, no byte
                // prefix). Lexed as one Ident token — splitting it into
                // `r` `#` `ident` would fabricate a keyword token (e.g.
                // `r#fn` -> `fn`) that corrupts fn-span and test-mask
                // recovery downstream.
                if j == i
                    && hashes == 1
                    && bytes
                        .get(k)
                        .is_some_and(|b| b.is_ascii_alphabetic() || *b == b'_')
                {
                    let mut end = k + 1;
                    while end < bytes.len()
                        && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                    {
                        end += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        text: src[i..end].to_string(),
                        line,
                    });
                    i = end;
                    continue;
                }
            }
        }
        // Byte string b"..." handled with plain strings below.
        if c == '"' || (c == 'b' && bytes.get(i + 1) == Some(&b'"')) {
            let start = i;
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            let text = &src[start..j.min(bytes.len())];
            toks.push(Tok {
                kind: TokKind::Str,
                text: text.to_string(),
                line,
            });
            bump_lines!(text);
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: 'ident not closed by a quote.
            let mut j = i + 1;
            let mut ident_len = 0usize;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                ident_len += 1;
                j += 1;
            }
            if ident_len > 0 && bytes.get(j) != Some(&b'\'') {
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
                continue;
            }
            // Char literal: 'x', '\n', '\'', '\u{1F600}'.
            let mut j = i + 1;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            toks.push(Tok {
                kind: TokKind::Char,
                text: src[i..j.min(bytes.len())].to_string(),
                line,
            });
            i = j;
            continue;
        }
        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: src[i..j].to_string(),
                line,
            });
            i = j;
            continue;
        }
        // Number. Consume digits/alphanumerics/underscores; a `.` joins
        // only when followed by a digit (so `0..n` stays three tokens).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < bytes.len() {
                let b = bytes[j];
                let dot_joins = b == b'.'
                    && bytes.get(j + 1).is_some_and(|n| n.is_ascii_digit())
                    && !src[i..j].contains('.');
                if b.is_ascii_alphanumeric() || b == b'_' || dot_joins {
                    j += 1;
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: src[i..j].to_string(),
                line,
            });
            i = j;
            continue;
        }
        // Everything else: one punctuation character per token.
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += c.len_utf8();
    }

    // Resolve each suppression's covered code line: the first
    // token-bearing line at or after the marker (skipping over further
    // comment-only lines, which carry no tokens).
    for s in &mut suppressions {
        s.covers = toks
            .iter()
            .map(|t| t.line)
            .filter(|&l| l > s.line)
            .min()
            .unwrap_or(s.line);
    }

    Lexed { toks, suppressions }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            texts("let x = foo.bar(1);"),
            ["let", "x", "=", "foo", ".", "bar", "(", "1", ")", ";"]
        );
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        assert_eq!(texts("0..n"), ["0", ".", ".", "n"]);
        assert_eq!(texts("1.5 + 2"), ["1.5", "+", "2"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        assert_eq!(texts("&'a str"), ["&", "'a", "str"]);
        let lx = lex("let c = 'x'; let n = '\\n';");
        let chars: Vec<_> = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, ["'x'", "'\\n'"]);
    }

    #[test]
    fn strings_absorb_contents() {
        let lx = lex("f(\"a // not a comment\", r#\"raw \" here\"#);");
        let strs = lx.toks.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(strs, 2);
        assert!(lx.toks.iter().all(|t| t.text != "not"));
    }

    #[test]
    fn comments_are_skipped_and_nested_blocks_close() {
        assert_eq!(texts("a /* x /* y */ z */ b // tail\nc"), ["a", "b", "c"]);
    }

    // Nested block comments are depth-counted like rustc's lexer. These
    // pin the tricky closings so a future rewrite cannot regress them:
    // early termination here would silently un-mask tokens (test-mask and
    // suppression recovery both run on the token stream).
    #[test]
    fn nested_block_comment_edge_cases() {
        // Back-to-back closers.
        assert_eq!(texts("a /* /* */*/ b"), ["a", "b"]);
        // Opener immediately followed by a closer at depth 2.
        assert_eq!(texts("a /*/**/ */ b"), ["a", "b"]);
        // `/*/` opens then the next `/` is comment text, not a closer.
        assert_eq!(texts("a /* /*/ */ */ b"), ["a", "b"]);
        // A `//` inside a block comment does not hide the closer.
        assert_eq!(texts("a /* // */ b"), ["a", "b"]);
        // Unterminated comment swallows the rest of the input.
        assert_eq!(texts("a /* /* */ b"), ["a"]);
    }

    #[test]
    fn raw_identifiers_lex_as_single_tokens() {
        assert_eq!(
            texts("let r#type = r#fn + 1;"),
            ["let", "r#type", "=", "r#fn", "+", "1", ";"]
        );
        let lx = lex("r#type");
        assert_eq!(lx.toks.len(), 1);
        assert_eq!(lx.toks[0].kind, TokKind::Ident);
        // The keyword must never leak out of a raw identifier: `r#fn`
        // yielding an `fn` token would fabricate a phantom fn-span.
        assert!(lex("let x = r#fn;").toks.iter().all(|t| t.text != "fn"));
        // Raw strings with one hash still lex as strings, not raw idents.
        let lx = lex("r#\"text\"#");
        assert_eq!(lx.toks.len(), 1);
        assert_eq!(lx.toks[0].kind, TokKind::Str);
    }

    #[test]
    fn lines_are_tracked_through_literals() {
        let lx = lex("a\n\"two\nlines\"\nb");
        let a = lx.toks.iter().find(|t| t.text == "a").unwrap();
        let b = lx.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(a.line, 1);
        assert_eq!(b.line, 4);
    }

    #[test]
    fn suppression_covers_marker_and_next_code_line() {
        let src = "fn f() {\n    // lint:allow(determinism) — rationale\n    // spanning two comment lines.\n    let t = now();\n}\n";
        let lx = lex(src);
        assert_eq!(lx.suppressions.len(), 1);
        let s = &lx.suppressions[0];
        assert_eq!(s.line, 2);
        assert_eq!(s.covers, 4);
        assert!(lx.suppressed(4, "determinism", "RL-D002"));
        assert!(lx.suppressed(2, "determinism", "RL-D002"));
        assert!(!lx.suppressed(5, "determinism", "RL-D002"));
        assert!(!lx.suppressed(4, "panic-path", "RL-P001"));
    }

    #[test]
    fn suppression_by_code_and_trailing_marker() {
        let src = "let x = v.get(0); // lint:allow(RL-P003)\n";
        let lx = lex(src);
        assert!(lx.suppressed(1, "panic-path", "RL-P003"));
        assert!(!lx.suppressed(1, "panic-path", "RL-P001"));
    }
}
