//! `lint.toml` loading via a minimal hand-rolled TOML-subset parser.
//!
//! Supported syntax: `[section]` headers, `key = value` pairs where a
//! value is a quoted string, an integer, a boolean, or a flat array of
//! quoted strings (single line or spread across lines), and `#` comments.
//! That subset is all the config needs; anything else is a hard error so
//! typos fail loudly instead of silently disabling a rule.

use std::collections::BTreeMap;

/// Where a rule family looks, and what it ignores.
#[derive(Debug, Clone, Default)]
pub struct RuleScope {
    /// Files or directories (relative to the lint root) to scan.
    pub paths: Vec<String>,
    /// Files inside `paths` exempt from the family (sanctioned shims).
    pub allow_files: Vec<String>,
}

/// Configuration for the wire-drift family.
#[derive(Debug, Clone, Default)]
pub struct WireDriftConfig {
    /// Directories holding the struct definitions to cross-check.
    pub struct_paths: Vec<String>,
    /// Struct names whose fields must be covered by the codec.
    pub structs: Vec<String>,
    /// File containing the `Wire` impls.
    pub codec: String,
    /// File containing the protocol enums and `PROTOCOL_VERSION`.
    pub protocol: String,
    /// Version the recorded fingerprint was taken at.
    pub protocol_version: u64,
    /// FNV-1a fingerprint of the protocol file's non-test tokens
    /// (16 hex digits); empty on first bootstrap.
    pub protocol_fingerprint: String,
}

/// Configuration for the hot-path allocation family: a scope plus the
/// root functions whose transitive callees form the hot set.
#[derive(Debug, Clone, Default)]
pub struct HotPathConfig {
    pub paths: Vec<String>,
    pub allow_files: Vec<String>,
    /// Function (or named-closure) names that anchor the hot set. Names
    /// that resolve to no function in `paths` are a config error.
    pub hot_fns: Vec<String>,
}

/// Whole-run configuration (one section per rule family).
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    pub determinism: RuleScope,
    pub panic_path: RuleScope,
    pub lock_order: RuleScope,
    pub wire_drift: WireDriftConfig,
    pub blocking: RuleScope,
    pub shared_state: RuleScope,
    pub hot_path: HotPathConfig,
}

/// A parsed TOML-subset value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(u64),
    Bool(bool),
    Array(Vec<String>),
}

fn parse_string(s: &str) -> Result<String, String> {
    let s = s.trim();
    if s.len() < 2 || !s.starts_with('"') || !s.ends_with('"') {
        return Err(format!("expected quoted string, got `{s}`"));
    }
    Ok(s[1..s.len() - 1].to_string())
}

fn parse_value(raw: &str) -> Result<Value, String> {
    let raw = raw.trim();
    if raw.starts_with('[') {
        let inner = raw
            .strip_prefix('[')
            .and_then(|r| r.strip_suffix(']'))
            .ok_or_else(|| format!("unterminated array `{raw}`"))?;
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_string(part)?);
        }
        return Ok(Value::Array(items));
    }
    if raw.starts_with('"') {
        return Ok(Value::Str(parse_string(raw)?));
    }
    if raw == "true" {
        return Ok(Value::Bool(true));
    }
    if raw == "false" {
        return Ok(Value::Bool(false));
    }
    raw.replace('_', "")
        .parse::<u64>()
        .map(Value::Int)
        .map_err(|_| format!("cannot parse value `{raw}`"))
}

/// Strips a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses the TOML subset into section → key → value maps.
fn parse_toml(src: &str) -> Result<BTreeMap<String, BTreeMap<String, Value>>, String> {
    let mut out: BTreeMap<String, BTreeMap<String, Value>> = BTreeMap::new();
    let mut section = String::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((n, raw_line)) = lines.next() {
        let line = strip_comment(raw_line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line
                .strip_prefix('[')
                .and_then(|l| l.strip_suffix(']'))
                .ok_or_else(|| format!("line {}: malformed section `{line}`", n + 1))?
                .trim()
                .to_string();
            out.entry(section.clone()).or_default();
            continue;
        }
        let Some((key, val)) = line.split_once('=') else {
            return Err(format!(
                "line {}: expected `key = value`, got `{line}`",
                n + 1
            ));
        };
        // A multi-line array: keep consuming lines until the bracket
        // closes.
        let mut val = val.trim().to_string();
        while val.starts_with('[') && !val.ends_with(']') {
            let Some((_, next)) = lines.next() else {
                return Err(format!("line {}: unterminated array", n + 1));
            };
            val.push_str(strip_comment(next).trim());
        }
        let value = parse_value(&val).map_err(|e| format!("line {}: {e}", n + 1))?;
        out.entry(section.clone())
            .or_default()
            .insert(key.trim().to_string(), value);
    }
    Ok(out)
}

fn take_array(
    sec: &BTreeMap<String, Value>,
    section: &str,
    key: &str,
) -> Result<Vec<String>, String> {
    match sec.get(key) {
        None => Ok(Vec::new()),
        Some(Value::Array(a)) => Ok(a.clone()),
        Some(_) => Err(format!("[{section}] {key}: expected an array of strings")),
    }
}

fn take_string(sec: &BTreeMap<String, Value>, section: &str, key: &str) -> Result<String, String> {
    match sec.get(key) {
        None => Ok(String::new()),
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("[{section}] {key}: expected a string")),
    }
}

fn take_int(sec: &BTreeMap<String, Value>, section: &str, key: &str) -> Result<u64, String> {
    match sec.get(key) {
        None => Ok(0),
        Some(Value::Int(n)) => Ok(*n),
        Some(_) => Err(format!("[{section}] {key}: expected an integer")),
    }
}

impl LintConfig {
    /// Parses a `lint.toml` document.
    pub fn parse(src: &str) -> Result<LintConfig, String> {
        let doc = parse_toml(src)?;
        let mut cfg = LintConfig::default();
        for (section, keys) in &doc {
            match section.as_str() {
                "determinism" | "panic_path" | "lock_order" | "blocking" | "shared_state" => {
                    let scope = RuleScope {
                        paths: take_array(keys, section, "paths")?,
                        allow_files: take_array(keys, section, "allow_files")?,
                    };
                    match section.as_str() {
                        "determinism" => cfg.determinism = scope,
                        "panic_path" => cfg.panic_path = scope,
                        "lock_order" => cfg.lock_order = scope,
                        "blocking" => cfg.blocking = scope,
                        _ => cfg.shared_state = scope,
                    }
                }
                "hot_path" => {
                    cfg.hot_path = HotPathConfig {
                        paths: take_array(keys, section, "paths")?,
                        allow_files: take_array(keys, section, "allow_files")?,
                        hot_fns: take_array(keys, section, "hot_fns")?,
                    };
                }
                "wire_drift" => {
                    cfg.wire_drift = WireDriftConfig {
                        struct_paths: take_array(keys, section, "struct_paths")?,
                        structs: take_array(keys, section, "structs")?,
                        codec: take_string(keys, section, "codec")?,
                        protocol: take_string(keys, section, "protocol")?,
                        protocol_version: take_int(keys, section, "protocol_version")?,
                        protocol_fingerprint: take_string(keys, section, "protocol_fingerprint")?,
                    };
                }
                other => return Err(format!("unknown section [{other}]")),
            }
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let src = r#"
# comment
[determinism]
paths = ["crates/sim/src", "crates/core/src"]
allow_files = ["crates/core/src/clock.rs"]

[panic_path]
paths = [
    "crates/cluster/src/driver.rs",  # trailing comment
    "crates/comm/src/socket.rs",
]

[lock_order]
paths = ["crates/steal/src"]

[wire_drift]
struct_paths = ["crates/core/src"]
structs = ["Scenario", "RunReport"]
codec = "crates/core/src/codec.rs"
protocol = "crates/cluster/src/protocol.rs"
protocol_version = 1
protocol_fingerprint = "0123456789abcdef"
"#;
        let cfg = LintConfig::parse(src).unwrap();
        assert_eq!(cfg.determinism.paths.len(), 2);
        assert_eq!(cfg.determinism.allow_files, ["crates/core/src/clock.rs"]);
        assert_eq!(cfg.panic_path.paths.len(), 2);
        assert_eq!(cfg.wire_drift.structs, ["Scenario", "RunReport"]);
        assert_eq!(cfg.wire_drift.protocol_version, 1);
        assert_eq!(cfg.wire_drift.protocol_fingerprint, "0123456789abcdef");
    }

    #[test]
    fn parses_new_family_sections() {
        let src = r#"
[blocking]
paths = ["crates/comm/src"]

[shared_state]
paths = ["crates/steal/src"]
allow_files = ["crates/steal/src/shim.rs"]

[hot_path]
paths = ["crates/sim/src/shard.rs"]
hot_fns = ["handle", "run_worker"]
"#;
        let cfg = LintConfig::parse(src).unwrap();
        assert_eq!(cfg.blocking.paths, ["crates/comm/src"]);
        assert_eq!(cfg.shared_state.allow_files.len(), 1);
        assert_eq!(cfg.hot_path.hot_fns, ["handle", "run_worker"]);
    }

    #[test]
    fn unknown_section_is_an_error() {
        assert!(LintConfig::parse("[typo]\npaths = []\n").is_err());
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(LintConfig::parse("[determinism]\nnot a kv\n").is_err());
    }
}
