//! rocket-lint: an offline analyzer for the Rocket workspace.
//!
//! Rocket's correctness claims rest on properties the compiler does not
//! check: bit-identical replay for a fixed seed, fault paths that degrade
//! instead of aborting, a consistent lock order, and a wire codec that
//! covers every field it claims to ship. This crate enforces all four as
//! a CI gate, with no dependency on `syn`, `rustc` internals, or the
//! network — it tokenizes the source directly ([`lexer`]) and runs four
//! rule families ([`rules`]) over the scopes named in `lint.toml`
//! ([`config`]).
//!
//! Findings carry stable codes (`RL-D001`, ...) and can be excused in
//! place with a `// lint:allow(<rule-or-code>) — rationale` comment on
//! (or immediately above) the offending line, or wholesale for a
//! sanctioned file via `allow_files`. Suppressed findings still appear in
//! the report, marked, so the exception inventory stays visible.
//!
//! The `rocket-lint` binary (in the workspace root crate) is the CLI:
//! exit 0 when clean, 1 on unsuppressed diagnostics, 2 on config errors.

pub(crate) mod callgraph;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;

use std::path::{Path, PathBuf};

use config::LintConfig;
use diag::Diagnostic;
use source::SourceFile;

/// Collects `.rs` files under each configured path (relative to `root`),
/// in deterministic sorted order. A path may be a single file.
fn rs_files(root: &Path, rel_paths: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for rel in rel_paths {
        let full = root.join(rel);
        if full.is_file() {
            out.push(full);
        } else if full.is_dir() {
            walk(&full, &mut out)?;
        } else {
            return Err(format!("lint.toml names `{rel}`, which does not exist"));
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Root-relative display path (falls back to the full path).
fn rel_display(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn load(root: &Path, path: &Path) -> Result<SourceFile, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Ok(SourceFile::new(rel_display(root, path), &src))
}

fn load_scope(
    root: &Path,
    paths: &[String],
    allow_files: &[String],
) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    for path in rs_files(root, paths)? {
        let rel = rel_display(root, &path);
        if allow_files.contains(&rel) {
            continue;
        }
        files.push(load(root, &path)?);
    }
    Ok(files)
}

/// Runs every configured rule family over the workspace at `root`.
///
/// The result contains suppressed findings too (marked); callers gate on
/// the unsuppressed count. `Err` means the run itself could not proceed
/// (missing files, malformed config) — distinct from "found problems".
pub fn run(root: &Path, cfg: &LintConfig) -> Result<Vec<Diagnostic>, String> {
    let mut out = Vec::new();

    if !cfg.determinism.paths.is_empty() {
        for file in load_scope(root, &cfg.determinism.paths, &cfg.determinism.allow_files)? {
            rules::determinism::check(&file, &mut out);
        }
    }
    if !cfg.panic_path.paths.is_empty() {
        for file in load_scope(root, &cfg.panic_path.paths, &cfg.panic_path.allow_files)? {
            rules::panic_path::check(&file, &mut out);
        }
    }
    if !cfg.lock_order.paths.is_empty() {
        let files = load_scope(root, &cfg.lock_order.paths, &cfg.lock_order.allow_files)?;
        rules::lock_order::check(&files, &mut out);
    }
    if !cfg.blocking.paths.is_empty() {
        let files = load_scope(root, &cfg.blocking.paths, &cfg.blocking.allow_files)?;
        rules::blocking::check(&files, &mut out);
    }
    if !cfg.shared_state.paths.is_empty() {
        for file in load_scope(root, &cfg.shared_state.paths, &cfg.shared_state.allow_files)? {
            rules::shared_state::check(&file, &mut out);
        }
    }
    if !cfg.hot_path.paths.is_empty() {
        let files = load_scope(root, &cfg.hot_path.paths, &cfg.hot_path.allow_files)?;
        rules::hot_path::check(&files, &cfg.hot_path.hot_fns, &mut out)?;
    }
    let wd = &cfg.wire_drift;
    if !wd.structs.is_empty() {
        let struct_files = load_scope(root, &wd.struct_paths, &[])?;
        let codec = load(root, &root.join(&wd.codec))?;
        rules::wire_drift::check_codec(wd, &struct_files, &codec, &mut out);
    }
    if !wd.protocol.is_empty() {
        let protocol = load(root, &root.join(&wd.protocol))?;
        rules::wire_drift::check_protocol(wd, &protocol, &mut out);
    }

    diag::sort(&mut out);
    Ok(out)
}

/// Loads `lint.toml` from `path` and runs over `root`.
pub fn run_with_config_file(root: &Path, config_path: &Path) -> Result<Vec<Diagnostic>, String> {
    let src = std::fs::read_to_string(config_path)
        .map_err(|e| format!("read {}: {e}", config_path.display()))?;
    let cfg = LintConfig::parse(&src)?;
    run(root, &cfg)
}

/// Cross-checks the static lock-order model against a runtime witness
/// (a `witness-*.json` file from a `--features sanitize` test run, or a
/// directory of them, merged). Returns only the RL-X diagnostics; the
/// CLI appends them to the regular `run` output.
pub fn cross_check_witness(
    root: &Path,
    cfg: &LintConfig,
    witness_path: &Path,
) -> Result<Vec<Diagnostic>, String> {
    if cfg.lock_order.paths.is_empty() {
        return Err("--witness needs a [lock_order] scope in lint.toml".to_string());
    }
    let witness = rules::witness::Witness::load(witness_path)?;
    let files = load_scope(root, &cfg.lock_order.paths, &cfg.lock_order.allow_files)?;
    let mut out = Vec::new();
    rules::witness::check(&files, &witness, &witness_path.to_string_lossy(), &mut out);
    diag::sort(&mut out);
    Ok(out)
}

/// Computes the protocol file's fingerprint and version — the values
/// `lint.toml` records (CLI `--print-protocol`).
pub fn protocol_identity(root: &Path, cfg: &LintConfig) -> Result<(String, Option<u64>), String> {
    let file = load(root, &root.join(&cfg.wire_drift.protocol))?;
    Ok((
        rules::wire_drift::fingerprint(&file),
        rules::wire_drift::protocol_version(&file),
    ))
}
