//! Workspace-wide, name-resolved call graph over the token stream.
//!
//! Every rule that reasons across function boundaries (lock-order
//! cycles, blocking-while-locked, hot-path allocation) builds on this
//! module: one pass extracts, per function body, the ordered sequence of
//! *steps* — lock acquisitions, calls to other in-scope functions,
//! blocking operations, heap allocations — and the fixpoints over those
//! steps answer "which locks does this function take, transitively?"
//! and "can this function block, and through which call chain?".
//!
//! Resolution is name-based: a call `helper(..)`, `Type::helper(..)` or
//! `x.helper(..)` resolves to every in-scope function named `helper`.
//! Collisions merge conservatively (they can only add behavior, never
//! hide it). A short skip list keeps ubiquitous trait-method names
//! (`clone`, `next`, `fmt`, ...) from gluing the whole graph together.
//!
//! Lock-hold ranges are *block-scoped*, one step past the old
//! held-to-end-of-function rule: a guard bound by `let` is held to the
//! end of its enclosing brace block; an unbound guard (a statement
//! temporary like `self.m.lock().push(x)`) is held to the end of its
//! statement. Early `drop(guard)` is still invisible — that
//! overapproximation is deliberate and documented in
//! `docs/lint-rules.md`.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokKind;
use crate::source::{matching, SourceFile};

/// One interesting event inside a function body, in token order.
#[derive(Debug, Clone)]
pub(crate) enum Step {
    /// A lock acquisition: zero-arg `.lock()` / `.read()` / `.write()`.
    /// `until` is the last token index at which the guard is considered
    /// held (end of enclosing block for `let`-bound guards, end of
    /// statement for temporaries).
    Acquire {
        lock: String,
        line: u32,
        at: usize,
        until: usize,
    },
    /// A call resolved to one or more in-scope functions by name.
    Call {
        callee: String,
        line: u32,
        at: usize,
    },
    /// A directly blocking operation (recv, join, wait, sleep, file or
    /// socket IO). `what` is a short human label.
    Block { what: String, line: u32, at: usize },
    /// A heap allocation (`Vec::new`, `format!`, `.to_vec()`, ...).
    Alloc { what: String, line: u32, at: usize },
}

impl Step {
    pub(crate) fn at(&self) -> usize {
        match self {
            Step::Acquire { at, .. }
            | Step::Call { at, .. }
            | Step::Block { at, .. }
            | Step::Alloc { at, .. } => *at,
        }
    }
}

/// One function body's extracted steps, tagged with its source file.
#[derive(Debug)]
pub(crate) struct FnBody {
    pub file_idx: usize,
    pub steps: Vec<Step>,
}

/// A blocking capability: the operation and the call chain that reaches
/// it (empty `via` means the function blocks directly).
#[derive(Debug, Clone)]
pub(crate) struct BlockChain {
    pub what: String,
    pub via: Vec<String>,
}

impl BlockChain {
    /// `a -> b -> recv` style rendering, rooted at `head`.
    pub(crate) fn render(&self, head: &str) -> String {
        let mut parts = vec![head.to_string()];
        parts.extend(self.via.iter().cloned());
        format!("{} -> {}", parts.join(" -> "), self.what)
    }
}

/// The call graph: every in-scope function name mapped to its bodies
/// (multiple bodies when the name collides across impls/files).
#[derive(Debug)]
pub(crate) struct CallGraph {
    pub bodies: BTreeMap<String, Vec<FnBody>>,
}

/// Trait-method names too generic to resolve by name: treating every
/// `.clone()` as a call to some workspace fn named `clone` would glue
/// unrelated code together.
const SKIP_METHODS: [&str; 20] = [
    "clear", "clone", "cmp", "contains", "default", "drop", "eq", "fmt", "from", "get", "hash",
    "insert", "into", "is_empty", "len", "new", "next", "pop", "push", "remove",
];

/// Directly blocking operations, matched on the method name of a
/// `.name(` call. Labels name the operation class for messages.
fn blocking_method(name: &str, zero_arg: bool) -> Option<&'static str> {
    match name {
        "recv" if zero_arg => Some("channel/socket recv"),
        "recv_timeout" => Some("channel recv_timeout"),
        "join" if zero_arg => Some("thread join"),
        "wait" | "wait_while" | "wait_until" | "wait_for" | "wait_timeout" => {
            Some("condvar/barrier wait")
        }
        "read_exact" | "write_all" => Some("stream IO"),
        "flush" if zero_arg => Some("stream flush"),
        "accept" => Some("socket accept"),
        _ => None,
    }
}

/// Heap-allocating method calls (`.name(`); `zero_arg` distinguishes
/// `.clone()` from `.clone_from(..)`-style calls.
fn alloc_method(name: &str, zero_arg: bool) -> Option<&'static str> {
    match name {
        "to_vec" => Some("to_vec"),
        "to_string" => Some("to_string"),
        "to_owned" => Some("to_owned"),
        "clone" if zero_arg => Some("clone"),
        _ => None,
    }
}

/// Heap-allocating `Type::ctor` paths.
fn alloc_path(ty: &str, ctor: &str) -> Option<String> {
    let heap_ty = matches!(
        ty,
        "Vec" | "String" | "Box" | "VecDeque" | "BTreeMap" | "BTreeSet" | "HashMap" | "HashSet"
    );
    let ctor_ok = matches!(ctor, "new" | "with_capacity" | "from");
    if heap_ty && ctor_ok {
        Some(format!("{ty}::{ctor}"))
    } else {
        None
    }
}

/// Walks back from the `.` of `.lock()` to the receiver identifier,
/// skipping balanced `(...)`/`[...]` groups (so `self.slots[i].lock()`
/// and `self.table().lock()` both resolve sensibly). Returns the name
/// and the token index where the receiver chain starts.
fn receiver_name(file: &SourceFile, dot: usize) -> Option<(String, usize)> {
    let toks = &file.lexed.toks;
    let mut i = dot.checked_sub(1)?;
    loop {
        let t = toks.get(i)?;
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, ")") | (TokKind::Punct, "]") => {
                // Skip the balanced group backwards.
                let (open, close) = if t.text == ")" {
                    ("(", ")")
                } else {
                    ("[", "]")
                };
                let mut depth = 0isize;
                loop {
                    let u = toks.get(i)?;
                    if u.kind == TokKind::Punct {
                        if u.text == close {
                            depth += 1;
                        } else if u.text == open {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                    }
                    i = i.checked_sub(1)?;
                }
                i = i.checked_sub(1)?;
            }
            (TokKind::Ident, "self") => return None, // bare `self.lock()`
            (TokKind::Ident, name) => return Some((name.to_string(), i)),
            _ => return None,
        }
    }
}

/// Whether the statement containing token `chain_start` begins with
/// `let`. Walks backward to the previous statement boundary (`;`, any
/// brace, or an argument-separating `,`), tolerating walks *out* of
/// nested groups (negative depth) so `map(|c| c.lock())` still sees the
/// `let` that binds the collected guards.
fn statement_is_let(file: &SourceFile, chain_start: usize) -> bool {
    let toks = &file.lexed.toks;
    let mut depth = 0isize;
    let mut first_ident: Option<&str> = None;
    let mut i = chain_start;
    while let Some(prev) = i.checked_sub(1) {
        i = prev;
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, ")") | (TokKind::Punct, "]") => depth += 1,
            (TokKind::Punct, "(") | (TokKind::Punct, "[") => depth -= 1,
            (TokKind::Punct, "{") | (TokKind::Punct, "}") | (TokKind::Punct, ";") => break,
            (TokKind::Punct, ",") if depth >= 0 => break,
            (TokKind::Ident, name) => first_ident = Some(name),
            _ => {}
        }
    }
    first_ident == Some("let")
}

/// End of the statement containing the acquire whose call closes at
/// `close`: the first `;` or `{` at relative depth zero, capped at the
/// token that closes the enclosing block.
fn statement_end(file: &SourceFile, close: usize, block_end: usize) -> usize {
    let toks = &file.lexed.toks;
    let mut depth = 0isize;
    let mut i = close + 1;
    while i <= block_end && i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    if depth == 0 {
                        return i; // expression ends with the group we're in
                    }
                    depth -= 1;
                }
                "{" if depth == 0 => return i,
                ";" if depth == 0 => return i,
                "}" if depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    block_end
}

/// Extracts the step sequence of one function body (tokens
/// `start..=end`, inclusive of the braces).
pub(crate) fn body_steps(
    file: &SourceFile,
    start: usize,
    end: usize,
    fn_names: &BTreeSet<String>,
) -> Vec<Step> {
    let toks = &file.lexed.toks;
    let mut steps = Vec::new();
    // Innermost enclosing `{` indices as we walk.
    let mut opens: Vec<usize> = Vec::new();
    let mut i = start;
    while i <= end && i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => opens.push(i),
                "}" => {
                    opens.pop();
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].text == ".";
        let prev_path = i > 1 && toks[i - 1].text == ":" && toks[i - 2].text == ":";
        let next_paren = toks.get(i + 1).is_some_and(|n| n.text == "(");
        let zero_arg = next_paren && toks.get(i + 2).is_some_and(|n| n.text == ")");

        // Lock acquisition: `.lock(...)`; `.read()` / `.write()` need the
        // zero-arg restriction to dodge io::Read/Write.
        let is_acquire = match t.text.as_str() {
            "lock" => prev_dot && next_paren,
            "read" | "write" => prev_dot && zero_arg,
            _ => false,
        };
        if is_acquire {
            if let Some((lock, chain_start)) = receiver_name(file, i - 1) {
                let close = if next_paren {
                    matching(toks, i + 1, "(", ")")
                } else {
                    i + 1
                };
                let block_end = opens
                    .last()
                    .map(|&o| matching(toks, o, "{", "}"))
                    .unwrap_or(end);
                // A guard that keeps being used as a receiver
                // (`.lock().push(x)`) is a statement temporary no matter
                // how the statement started.
                let temporary = toks
                    .get(close + 1)
                    .is_some_and(|n| n.text == "." || n.text == "?");
                let until = if !temporary && statement_is_let(file, chain_start) {
                    block_end
                } else {
                    statement_end(file, close, block_end)
                };
                steps.push(Step::Acquire {
                    lock,
                    line: t.line,
                    at: i,
                    until,
                });
            }
            i += 1;
            continue;
        }

        // Directly blocking operations.
        if prev_dot {
            if let Some(what) = blocking_method(&t.text, zero_arg) {
                steps.push(Step::Block {
                    what: what.to_string(),
                    line: t.line,
                    at: i,
                });
                i += 1;
                continue;
            }
        }
        // Path-style blocking: `thread::sleep`, `fs::read*`, `File::open`,
        // `TcpStream::connect`, and the pacing helper `clock::pace`.
        if prev_path {
            let ty = toks[i - 3].text.as_str();
            let what = match (ty, t.text.as_str()) {
                ("thread", "sleep") => Some("thread::sleep"),
                ("clock", "pace") => Some("clock::pace"),
                ("fs", name) if name.starts_with("read") || name.starts_with("write") => {
                    Some("file IO")
                }
                ("File", "open") | ("File", "create") => Some("file IO"),
                ("TcpStream", "connect") | ("TcpListener", "bind") => Some("socket connect"),
                _ => None,
            };
            if let Some(what) = what {
                steps.push(Step::Block {
                    what: what.to_string(),
                    line: t.line,
                    at: i,
                });
                i += 1;
                continue;
            }
            // Heap-allocating constructors: `Vec::new`, `String::from`...
            if next_paren {
                if let Some(what) = alloc_path(ty, &t.text) {
                    steps.push(Step::Alloc {
                        what,
                        line: t.line,
                        at: i,
                    });
                    i += 1;
                    continue;
                }
            }
        }
        // Allocating macros: `vec![..]`, `format!(..)`.
        if matches!(t.text.as_str(), "vec" | "format")
            && toks.get(i + 1).is_some_and(|n| n.text == "!")
        {
            steps.push(Step::Alloc {
                what: format!("{}!", t.text),
                line: t.line,
                at: i,
            });
            i += 1;
            continue;
        }
        // Allocating methods: `.to_vec()`, `.clone()`, ...
        if prev_dot && next_paren {
            if let Some(what) = alloc_method(&t.text, zero_arg) {
                steps.push(Step::Alloc {
                    what: format!(".{what}()"),
                    line: t.line,
                    at: i,
                });
                // `.clone()` may *also* be a resolvable call, but clone
                // is on the skip list, so fall through is moot.
                i += 1;
                continue;
            }
        }
        // Calls resolved by name: free `helper(..)`, path `T::helper(..)`
        // and method `x.helper(..)` forms, against the in-scope fn set.
        // A free `drop(..)` is always `mem::drop`: Rust forbids calling a
        // `Drop` impl's method directly (E0040), so resolving it to an
        // in-scope `fn drop` body would be a fabricated edge.
        if next_paren
            && fn_names.contains(&t.text)
            && (i == 0 || toks[i - 1].text != "fn")
            && !(prev_dot && SKIP_METHODS.contains(&t.text.as_str()))
            && (prev_dot || t.text != "drop")
        {
            steps.push(Step::Call {
                callee: t.text.clone(),
                line: t.line,
                at: i,
            });
        }
        i += 1;
    }
    steps
}

impl CallGraph {
    /// Builds the graph over every non-test function body in `files`.
    pub(crate) fn build(files: &[SourceFile]) -> CallGraph {
        let fn_names: BTreeSet<String> = files
            .iter()
            .flat_map(|f| f.fns().into_iter().map(|s| s.name))
            .collect();
        let mut bodies: BTreeMap<String, Vec<FnBody>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for span in file.fns() {
                let steps = body_steps(file, span.body_start, span.body_end, &fn_names);
                bodies.entry(span.name).or_default().push(FnBody {
                    file_idx: fi,
                    steps,
                });
            }
        }
        CallGraph { bodies }
    }

    /// Locks each function (transitively) acquires, to a fixpoint.
    pub(crate) fn effective_locks(&self) -> BTreeMap<String, BTreeSet<String>> {
        let mut effective: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        loop {
            let mut changed = false;
            for (name, variants) in &self.bodies {
                let mut locks: BTreeSet<String> = effective.get(name).cloned().unwrap_or_default();
                let before = locks.len();
                for body in variants {
                    for step in &body.steps {
                        match step {
                            Step::Acquire { lock, .. } => {
                                locks.insert(lock.clone());
                            }
                            Step::Call { callee, .. } => {
                                if let Some(sub) = effective.get(callee) {
                                    locks.extend(sub.iter().cloned());
                                }
                            }
                            _ => {}
                        }
                    }
                }
                if locks.len() != before || !effective.contains_key(name) {
                    changed = true;
                }
                effective.insert(name.clone(), locks);
            }
            if !changed {
                break;
            }
        }
        effective
    }

    /// Which functions may block, with one witness call chain each, to a
    /// fixpoint. First-discovered chains win, and iteration order is the
    /// sorted body map, so the result is deterministic.
    pub(crate) fn may_block(&self) -> BTreeMap<String, BlockChain> {
        let mut blocking: BTreeMap<String, BlockChain> = BTreeMap::new();
        loop {
            let mut changed = false;
            for (name, variants) in &self.bodies {
                if blocking.contains_key(name) {
                    continue;
                }
                'variants: for body in variants {
                    for step in &body.steps {
                        match step {
                            Step::Block { what, .. } => {
                                blocking.insert(
                                    name.clone(),
                                    BlockChain {
                                        what: what.clone(),
                                        via: Vec::new(),
                                    },
                                );
                                changed = true;
                                break 'variants;
                            }
                            Step::Call { callee, .. } => {
                                if callee == name {
                                    continue; // direct recursion
                                }
                                if let Some(sub) = blocking.get(callee) {
                                    let mut via = vec![callee.clone()];
                                    via.extend(sub.via.iter().take(4).cloned());
                                    blocking.insert(
                                        name.clone(),
                                        BlockChain {
                                            what: sub.what.clone(),
                                            via,
                                        },
                                    );
                                    changed = true;
                                    break 'variants;
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        blocking
    }

    /// Functions reachable from `roots` through resolved calls, each with
    /// its BFS call chain (`root -> .. -> fn`). Roots map to themselves.
    pub(crate) fn reachable(&self, roots: &[String]) -> BTreeMap<String, Vec<String>> {
        let mut chains: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut frontier: Vec<String> = Vec::new();
        for root in roots {
            if self.bodies.contains_key(root) && !chains.contains_key(root) {
                chains.insert(root.clone(), vec![root.clone()]);
                frontier.push(root.clone());
            }
        }
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for name in frontier {
                let chain = chains.get(&name).cloned().unwrap_or_default();
                let mut callees: BTreeSet<&String> = BTreeSet::new();
                for body in self.bodies.get(&name).into_iter().flatten() {
                    for step in &body.steps {
                        if let Step::Call { callee, .. } = step {
                            callees.insert(callee);
                        }
                    }
                }
                for callee in callees {
                    if self.bodies.contains_key(callee) && !chains.contains_key(callee) {
                        let mut c = chain.clone();
                        c.push(callee.clone());
                        chains.insert(callee.clone(), c);
                        next.push(callee.clone());
                    }
                }
            }
            frontier = next;
        }
        chains
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(src: &str) -> (CallGraph, Vec<SourceFile>) {
        let f = SourceFile::new("x.rs".into(), src);
        let files = vec![f];
        (CallGraph::build(&files), files)
    }

    fn acquires(g: &CallGraph, f: &str) -> Vec<(String, usize, usize)> {
        g.bodies[f]
            .iter()
            .flat_map(|b| b.steps.iter())
            .filter_map(|s| match s {
                Step::Acquire {
                    lock, at, until, ..
                } => Some((lock.clone(), *at, *until)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn let_bound_guard_held_to_block_end() {
        let src = "fn f(&self) { let g = self.m.lock(); self.work(); }";
        let (g, files) = graph(src);
        let a = acquires(&g, "f");
        assert_eq!(a.len(), 1);
        // Held through the closing brace of the fn body.
        let toks = &files[0].lexed.toks;
        assert_eq!(toks[a[0].2].text, "}");
    }

    #[test]
    fn temporary_guard_held_to_statement_end() {
        let src = "fn f(&self) { self.m.lock().push(1); self.work(); }";
        let (g, files) = graph(src);
        let a = acquires(&g, "f");
        assert_eq!(a.len(), 1);
        let toks = &files[0].lexed.toks;
        assert_eq!(toks[a[0].2].text, ";");
        // `work` is called after the temporary dies.
        let work_at = toks.iter().position(|t| t.text == "work").unwrap();
        assert!(a[0].2 < work_at);
    }

    #[test]
    fn scoped_guard_released_at_inner_brace() {
        let src = "fn f(&self) { { let g = self.m.lock(); g.push(1); } self.work(); }";
        let (g, files) = graph(src);
        let a = acquires(&g, "f");
        let toks = &files[0].lexed.toks;
        let work_at = toks.iter().position(|t| t.text == "work").unwrap();
        assert!(a[0].2 < work_at, "inner-block guard must not reach work()");
    }

    #[test]
    fn closure_capture_in_let_holds_to_block_end() {
        // Guards collected into a `let`-bound Vec stay alive with it.
        let src = "fn f(&self) { let guards: Vec<_> = self.cells.iter().map(|c| c.lock()).collect(); self.work(); }";
        let (g, files) = graph(src);
        let a = acquires(&g, "f");
        assert_eq!(a.len(), 1);
        let toks = &files[0].lexed.toks;
        let work_at = toks.iter().position(|t| t.text == "work").unwrap();
        assert!(a[0].2 > work_at, "collected guards live past work()");
    }

    #[test]
    fn may_block_chains_through_calls() {
        let src = "fn leaf(rx: &Rx) { rx.recv(); }\nfn mid() { leaf(x); }\nfn top() { mid(); }";
        let (g, _) = graph(src);
        let mb = g.may_block();
        assert_eq!(mb["leaf"].via.len(), 0);
        assert_eq!(mb["mid"].via, ["leaf"]);
        assert_eq!(mb["top"].via, ["mid", "leaf"]);
        assert_eq!(
            mb["top"].render("top"),
            "top -> mid -> leaf -> channel/socket recv"
        );
    }

    #[test]
    fn method_calls_resolve_to_known_fns() {
        let src =
            "fn send(&self) { self.stream.write_all(b); }\nfn relay(&self) { self.peer.send(m); }";
        let (g, _) = graph(src);
        let mb = g.may_block();
        assert!(mb.contains_key("relay"), "relay -> send -> write_all");
    }

    #[test]
    fn skip_list_does_not_resolve() {
        let src = "fn clone(&self) -> Self { self.rx.recv(); Self }\nfn user(&self) { self.thing.clone(); }";
        let (g, _) = graph(src);
        let mb = g.may_block();
        assert!(!mb.contains_key("user"), ".clone() must not resolve");
    }

    #[test]
    fn allocs_detected() {
        let src = "fn f() { let v = Vec::new(); let s = x.to_vec(); let t = format!(\"x\"); }";
        let (g, _) = graph(src);
        let allocs: Vec<_> = g.bodies["f"]
            .iter()
            .flat_map(|b| b.steps.iter())
            .filter(|s| matches!(s, Step::Alloc { .. }))
            .collect();
        assert_eq!(allocs.len(), 3);
    }

    #[test]
    fn reachable_records_chains() {
        let src = "fn root() { a(); }\nfn a() { b(); }\nfn b() {}\nfn unrelated() {}";
        let (g, _) = graph(src);
        let r = g.reachable(&["root".into()]);
        assert_eq!(r["b"], ["root", "a", "b"]);
        assert!(!r.contains_key("unrelated"));
    }
}
