//! RL-W001..RL-W003: wire-format completeness and protocol versioning.
//!
//! The driver ships scenarios to workers and gets reports back through
//! the hand-rolled `Wire` codec. Two silent failure modes live there:
//!
//! - A field added to `Scenario`/`RunReport`/... but forgotten in the
//!   codec: the field silently resets to its default on the far side of
//!   the wire, and distributed runs diverge from local ones.
//!   **RL-W001** cross-checks every struct field against the `Wire`
//!   impl: the encoder must mention `self.<field>`, the decoder must
//!   mention `<field>` at all (shorthand struct init counts).
//! - A change to the `cluster::protocol` message enums without a
//!   `PROTOCOL_VERSION` bump: mixed-version deployments then
//!   misinterpret frames instead of refusing the handshake. The rule
//!   fingerprints the protocol file's token stream; a fingerprint change
//!   with the same version is **RL-W002**, and with a bumped version is
//!   **RL-W003** — a reminder to re-record the fingerprint in
//!   `lint.toml` (so the gate stays armed for the *next* edit).

use std::collections::BTreeMap;

use crate::config::WireDriftConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::rules::emit;
use crate::source::SourceFile;

const RULE: &str = "wire-drift";

/// Fields of one struct, in declaration order, with the struct's line.
#[derive(Debug, Clone)]
pub struct StructDef {
    pub fields: Vec<String>,
    pub line: u32,
}

/// Finds `struct <name> { ... }` definitions and their named fields.
pub fn struct_defs(file: &SourceFile, wanted: &[String]) -> BTreeMap<String, StructDef> {
    let toks = &file.lexed.toks;
    let mut out = BTreeMap::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "struct"
            && toks
                .get(i + 1)
                .is_some_and(|t| t.kind == TokKind::Ident && wanted.contains(&t.text))
        {
            let name = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            // Find the body brace (skipping generics; tuple structs and
            // unit structs have no named fields and are skipped).
            let mut j = i + 2;
            while j < toks.len()
                && toks[j].text != "{"
                && toks[j].text != ";"
                && toks[j].text != "("
            {
                j += 1;
            }
            if j < toks.len() && toks[j].text == "{" {
                let end = crate::source::matching(toks, j, "{", "}");
                let mut fields = Vec::new();
                let mut depth = 0isize;
                let mut k = j;
                while k <= end {
                    match toks[k].text.as_str() {
                        "{" | "(" | "[" | "<" => depth += 1,
                        "}" | ")" | "]" => depth -= 1,
                        // `>` closes a generic — unless it is the tail of
                        // a `->` in an fn-pointer field type.
                        ">" if !(k > 0 && toks[k - 1].text == "-") => depth -= 1,
                        ":" if depth == 1 => {
                            // `field :` at struct-body depth; the token
                            // before the colon is the field name, unless
                            // this is a path `::`.
                            let double = toks.get(k + 1).is_some_and(|t| t.text == ":")
                                || k > 0 && toks[k - 1].text == ":";
                            if !double {
                                if let Some(prev) = toks.get(k - 1) {
                                    if prev.kind == TokKind::Ident {
                                        fields.push(prev.text.clone());
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                out.insert(name, StructDef { fields, line });
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Token range of `fn <which>` bodies inside `impl Wire for <name>`.
fn wire_fn_body(file: &SourceFile, name: &str, which: &str) -> Option<(usize, usize, u32)> {
    let toks = &file.lexed.toks;
    let mut i = 0usize;
    while i + 3 < toks.len() {
        if toks[i].text == "impl"
            && toks[i + 1].text == "Wire"
            && toks[i + 2].text == "for"
            && toks[i + 3].text == name
        {
            let mut j = i + 4;
            while j < toks.len() && toks[j].text != "{" {
                j += 1;
            }
            if j >= toks.len() {
                return None;
            }
            let impl_end = crate::source::matching(toks, j, "{", "}");
            let mut k = j;
            while k < impl_end {
                if toks[k].text == "fn" && toks.get(k + 1).is_some_and(|t| t.text == which) {
                    let line = toks[k].line;
                    let mut b = k + 2;
                    while b < impl_end && toks[b].text != "{" {
                        if toks[b].text == "(" {
                            b = crate::source::matching(toks, b, "(", ")");
                        }
                        b += 1;
                    }
                    let end = crate::source::matching(toks, b, "{", "}");
                    return Some((b, end, line));
                }
                k += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

/// FNV-1a 64-bit over the non-test token texts of a file — a
/// whitespace- and comment-insensitive content fingerprint.
pub fn fingerprint(file: &SourceFile) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (i, t) in file.lexed.toks.iter().enumerate() {
        if file.is_test(i) {
            continue;
        }
        for b in t.text.bytes().chain(std::iter::once(0)) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Extracts the value of `PROTOCOL_VERSION` from the protocol file.
pub fn protocol_version(file: &SourceFile) -> Option<u64> {
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.text == "PROTOCOL_VERSION" {
            // const PROTOCOL_VERSION : u32 = <num> ;
            for k in i + 1..(i + 8).min(toks.len()) {
                if toks[k].text == "=" {
                    if let Some(num) = toks.get(k + 1) {
                        if num.kind == TokKind::Num {
                            return num.text.replace('_', "").parse().ok();
                        }
                    }
                }
            }
        }
    }
    None
}

/// Checks codec coverage of `structs` (defined in `struct_files`)
/// against the `Wire` impls in `codec_file`.
pub fn check_codec(
    cfg: &WireDriftConfig,
    struct_files: &[SourceFile],
    codec_file: &SourceFile,
    out: &mut Vec<Diagnostic>,
) {
    let mut defs: BTreeMap<String, StructDef> = BTreeMap::new();
    for f in struct_files {
        defs.extend(struct_defs(f, &cfg.structs));
    }
    for name in &cfg.structs {
        let Some(def) = defs.get(name) else {
            emit(
                out,
                codec_file,
                "RL-W001",
                RULE,
                1,
                format!("struct {name} named in lint.toml was not found under struct_paths"),
            );
            continue;
        };
        let encode = wire_fn_body(codec_file, name, "encode");
        let decode = wire_fn_body(codec_file, name, "decode");
        let (Some(enc), Some(dec)) = (encode, decode) else {
            emit(
                out,
                codec_file,
                "RL-W001",
                RULE,
                1,
                format!("no Wire impl with encode/decode found for {name}"),
            );
            continue;
        };
        let toks = &codec_file.lexed.toks;
        for field in &def.fields {
            // Encoder: a literal `self . field` access.
            let covered_enc = (enc.0..=enc.1).any(|i| {
                toks[i].text == "self"
                    && toks.get(i + 1).is_some_and(|t| t.text == ".")
                    && toks.get(i + 2).is_some_and(|t| t.text == *field)
            });
            if !covered_enc {
                emit(
                    out,
                    codec_file,
                    "RL-W001",
                    RULE,
                    enc.2,
                    format!(
                        "{name}::{field} is never encoded (no `self.{field}` in Wire::encode) — \
                         the field would silently vanish on the wire"
                    ),
                );
            }
            // Decoder: the field identifier anywhere in the body
            // (shorthand struct init `Self {{ field }}` counts).
            let covered_dec =
                (dec.0..=dec.1).any(|i| toks.get(i).is_some_and(|t| t.text == *field));
            if !covered_dec {
                emit(
                    out,
                    codec_file,
                    "RL-W001",
                    RULE,
                    dec.2,
                    format!(
                        "{name}::{field} is never decoded (identifier absent from Wire::decode) — \
                         the field would reset to default after transport"
                    ),
                );
            }
        }
    }
}

/// Checks the protocol fingerprint/version pairing.
pub fn check_protocol(
    cfg: &WireDriftConfig,
    protocol_file: &SourceFile,
    out: &mut Vec<Diagnostic>,
) {
    let fp = fingerprint(protocol_file);
    let version = protocol_version(protocol_file);
    let Some(version) = version else {
        emit(
            out,
            protocol_file,
            "RL-W002",
            RULE,
            1,
            "no PROTOCOL_VERSION constant found in the protocol file".into(),
        );
        return;
    };
    if cfg.protocol_fingerprint.is_empty() {
        emit(
            out,
            protocol_file,
            "RL-W003",
            RULE,
            1,
            format!(
                "no recorded protocol fingerprint; record in lint.toml: \
                 protocol_version = {version}, protocol_fingerprint = \"{fp}\""
            ),
        );
        return;
    }
    if fp == cfg.protocol_fingerprint {
        return; // unchanged since last recording
    }
    if version == cfg.protocol_version {
        emit(
            out,
            protocol_file,
            "RL-W002",
            RULE,
            1,
            format!(
                "protocol definitions changed (fingerprint {fp} != recorded \
                 {}) without a PROTOCOL_VERSION bump — mixed-version nodes would \
                 misread frames; bump PROTOCOL_VERSION",
                cfg.protocol_fingerprint
            ),
        );
    } else {
        emit(
            out,
            protocol_file,
            "RL-W003",
            RULE,
            1,
            format!(
                "protocol changed and PROTOCOL_VERSION bumped to {version}; \
                 re-record in lint.toml: protocol_version = {version}, \
                 protocol_fingerprint = \"{fp}\""
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: &str = "pub struct Pair {\n    pub left: u32,\n    pub right: Vec<u8>,\n}\n";

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::new(path.into(), src)
    }

    fn cfg() -> WireDriftConfig {
        WireDriftConfig {
            struct_paths: vec![],
            structs: vec!["Pair".into()],
            codec: String::new(),
            protocol: String::new(),
            protocol_version: 1,
            protocol_fingerprint: String::new(),
        }
    }

    #[test]
    fn complete_codec_is_clean() {
        let codec = "impl Wire for Pair {\n    fn encode(&self, b: &mut B) { b.put(self.left); b.put(&self.right); }\n    fn decode(r: &mut R) -> Self { let left = r.u32(); let right = r.bytes(); Pair { left, right } }\n}\n";
        let mut out = Vec::new();
        check_codec(
            &cfg(),
            &[file("m.rs", MODEL)],
            &file("c.rs", codec),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_encode_field_flagged() {
        let codec = "impl Wire for Pair {\n    fn encode(&self, b: &mut B) { b.put(self.left); }\n    fn decode(r: &mut R) -> Self { let left = r.u32(); let right = r.bytes(); Pair { left, right } }\n}\n";
        let mut out = Vec::new();
        check_codec(
            &cfg(),
            &[file("m.rs", MODEL)],
            &file("c.rs", codec),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("right"));
        assert!(out[0].message.contains("never encoded"));
    }

    #[test]
    fn missing_decode_field_flagged() {
        let codec = "impl Wire for Pair {\n    fn encode(&self, b: &mut B) { b.put(self.left); b.put(&self.right); }\n    fn decode(r: &mut R) -> Self { let left = r.u32(); Pair { left, right: Default::default() } }\n}\n";
        let mut out = Vec::new();
        check_codec(
            &cfg(),
            &[file("m.rs", MODEL)],
            &file("c.rs", codec),
            &mut out,
        );
        // `right:` appears in the decode body (as a defaulted field), so
        // this particular dodge is NOT caught — the decode check is
        // presence-based. Remove the mention entirely and it is caught.
        assert!(out.is_empty());
        let codec2 = codec.replace("right: Default::default()", "..Default::default()");
        let mut out2 = Vec::new();
        check_codec(
            &cfg(),
            &[file("m.rs", MODEL)],
            &file("c.rs", &codec2),
            &mut out2,
        );
        assert_eq!(out2.len(), 1);
        assert!(out2[0].message.contains("never decoded"));
    }

    #[test]
    fn fingerprint_ignores_comments_and_whitespace() {
        let a = file(
            "p.rs",
            "pub const PROTOCOL_VERSION: u32 = 1;\npub enum M { A, B, }\n",
        );
        let b = file(
            "p.rs",
            "// comment\npub const PROTOCOL_VERSION: u32 = 1;\n\npub enum M {\n    A,\n    B,\n}\n",
        );
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn drift_without_bump_is_w002_with_bump_is_w003() {
        let base = file(
            "p.rs",
            "pub const PROTOCOL_VERSION: u32 = 1;\npub enum M { A }\n",
        );
        let mut c = cfg();
        c.protocol_fingerprint = fingerprint(&base);
        c.protocol_version = 1;

        // Unchanged: clean.
        let mut out = Vec::new();
        check_protocol(&c, &base, &mut out);
        assert!(out.is_empty());

        // Enum edited, version untouched: W002.
        let drifted = file(
            "p.rs",
            "pub const PROTOCOL_VERSION: u32 = 1;\npub enum M { A, B }\n",
        );
        let mut out = Vec::new();
        check_protocol(&c, &drifted, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "RL-W002");

        // Enum edited and version bumped: W003 (re-record reminder).
        let bumped = file(
            "p.rs",
            "pub const PROTOCOL_VERSION: u32 = 2;\npub enum M { A, B }\n",
        );
        let mut out = Vec::new();
        check_protocol(&c, &bumped, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, "RL-W003");
    }

    #[test]
    fn version_constant_parsed() {
        let f = file("p.rs", "pub const PROTOCOL_VERSION: u32 = 42;\n");
        assert_eq!(protocol_version(&f), Some(42));
    }
}
