//! RL-S001..S004: shared-state hygiene.
//!
//! Cross-thread state in Rocket flows through instrumented locks and
//! atomics with explicit orderings; everything else is a data race or a
//! maintenance trap waiting for a refactor:
//!
//! - **RL-S001** — `static mut` items: unsynchronized global mutation,
//!   UB under concurrent access.
//! - **RL-S002** — statics of interior-mutable non-`Sync` shapes
//!   (`Cell`, `RefCell`, `Rc`, `UnsafeCell`, raw pointers). The compiler
//!   rejects most of these already; the rule catches them inside macro
//!   bodies and keeps wrapper types honest.
//! - **RL-S003** — `Ordering::Relaxed` loads that gate control flow
//!   (`if`/`while`/`match`): Relaxed gives no happens-before, so the
//!   branch can act on arbitrarily stale state. Monotonic
//!   counters/flags where staleness is benign carry a
//!   `lint:allow(RL-S003)` rationale.
//! - **RL-S004** — `Arc::get_mut`: mutation that silently depends on
//!   the refcount being 1; under concurrency the `None` arm hides the
//!   lost update. Use a lock or `Arc::make_mut`'s copy semantics
//!   deliberately.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::rules::{emit, seq_at};
use crate::source::SourceFile;

const RULE: &str = "shared-state";

/// Idents whose presence in a static's type makes it interior-mutable
/// and non-`Sync`.
const NON_SYNC: [&str; 4] = ["Cell", "Rc", "RefCell", "UnsafeCell"];

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.lexed.toks;
    for i in 0..toks.len() {
        if file.is_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            // `static mut NAME` — `'static` is a Lifetime token, so a
            // bare `static` ident really is the item keyword.
            "static" => {
                if toks.get(i + 1).is_some_and(|n| n.text == "mut") {
                    let name = toks
                        .get(i + 2)
                        .map(|n| n.text.as_str())
                        .unwrap_or("<unnamed>");
                    emit(
                        out,
                        file,
                        "RL-S001",
                        RULE,
                        t.line,
                        format!(
                            "`static mut {name}`: unsynchronized global mutation — \
                             use an atomic, a lock, or OnceLock"
                        ),
                    );
                    continue;
                }
                // `static NAME: Type = ...` — scan the type tokens.
                let Some(name_tok) = toks.get(i + 1) else {
                    continue;
                };
                if name_tok.kind != TokKind::Ident || toks.get(i + 2).is_none_or(|n| n.text != ":")
                {
                    continue;
                }
                let mut j = i + 3;
                let mut offender: Option<String> = None;
                while j < toks.len() {
                    let u = &toks[j];
                    if u.kind == TokKind::Punct && (u.text == "=" || u.text == ";") {
                        break;
                    }
                    if u.kind == TokKind::Ident && NON_SYNC.contains(&u.text.as_str()) {
                        offender = Some(u.text.clone());
                    }
                    if u.kind == TokKind::Punct
                        && u.text == "*"
                        && toks
                            .get(j + 1)
                            .is_some_and(|n| n.text == "const" || n.text == "mut")
                    {
                        offender = Some("raw pointer".to_string());
                    }
                    j += 1;
                }
                if let Some(what) = offender {
                    emit(
                        out,
                        file,
                        "RL-S002",
                        RULE,
                        t.line,
                        format!(
                            "static `{}` holds non-Sync state ({what}) — sharing it \
                             across threads is a data race",
                            name_tok.text
                        ),
                    );
                }
            }
            // `.load(Ordering::Relaxed)` feeding `if`/`while`/`match`.
            "load" => {
                if i == 0
                    || toks[i - 1].text != "."
                    || !seq_at(file, i + 1, &["(", "Ordering", ":", ":", "Relaxed", ")"])
                {
                    continue;
                }
                // Walk back to the start of the expression's statement;
                // a branch keyword there means the load gates control
                // flow. (`=` is not a boundary: `while x != y` contains
                // one.)
                let mut k = i;
                let mut gated = false;
                while let Some(prev) = k.checked_sub(1) {
                    k = prev;
                    let u = &toks[k];
                    if u.kind == TokKind::Punct && matches!(u.text.as_str(), ";" | "{" | "}") {
                        break;
                    }
                    if u.kind == TokKind::Ident
                        && matches!(u.text.as_str(), "if" | "while" | "match")
                    {
                        gated = true;
                        break;
                    }
                }
                if gated {
                    emit(
                        out,
                        file,
                        "RL-S003",
                        RULE,
                        t.line,
                        "Relaxed atomic load gates control flow — Relaxed gives no \
                         happens-before, so the branch can act on stale state"
                            .to_string(),
                    );
                }
            }
            // `Arc::get_mut(..)`.
            "Arc" if seq_at(file, i + 1, &[":", ":", "get_mut"]) => {
                emit(
                    out,
                    file,
                    "RL-S004",
                    RULE,
                    t.line,
                    "Arc::get_mut mutates only when the refcount is 1 — under \
                     concurrency the None arm hides a lost update; use a lock or \
                     make_mut"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("x.rs".into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn static_mut_is_s001() {
        let diags = run("static mut COUNTER: u64 = 0;");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL-S001");
        assert!(diags[0].message.contains("COUNTER"));
    }

    #[test]
    fn non_sync_static_is_s002() {
        let diags = run("static CACHE: RefCell<Vec<u8>> = RefCell::new(Vec::new());");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL-S002");
        let diags = run("static PTR: *const u8 = core::ptr::null();");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL-S002");
    }

    #[test]
    fn sync_static_and_lifetimes_are_clean() {
        assert!(run("static N: AtomicU64 = AtomicU64::new(0);").is_empty());
        assert!(run("fn f() -> &'static str { \"x\" }").is_empty());
        assert!(run("static NAME: &'static str = \"rocket\";").is_empty());
    }

    #[test]
    fn relaxed_load_gating_branch_is_s003() {
        let diags = run("fn f(&self) { if self.done.load(Ordering::Relaxed) { return; } }");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL-S003");
        let diags = run("fn f(&self) { while self.n.load(Ordering::Relaxed) != 0 { spin(); } }");
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn relaxed_load_into_value_is_clean() {
        assert!(run("fn f(&self) { let n = self.n.load(Ordering::Relaxed); log(n); }").is_empty());
        assert!(
            run("fn f(&self) { let n = self.n.load(Ordering::Acquire); if n > 0 {} }").is_empty()
        );
    }

    #[test]
    fn arc_get_mut_is_s004() {
        let diags = run("fn f(a: &mut Arc<V>) { if let Some(v) = Arc::get_mut(a) { v.push(1); } }");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL-S004");
    }

    #[test]
    fn test_code_is_masked() {
        let src = "#[cfg(test)]\nmod tests { static mut X: u64 = 0; }";
        assert!(run(src).is_empty());
    }
}
