//! The seven rule families.
//!
//! | Family         | Codes            | What it enforces                          |
//! |----------------|------------------|-------------------------------------------|
//! | `determinism`  | RL-D001..D004    | no order-random collections, wall clocks, |
//! |                |                  | sleeps, or unseeded RNG in sim/core/steal  |
//! | `panic-path`   | RL-P001..P003    | no unwrap/expect/panic/indexing on fault   |
//! |                |                  | paths                                      |
//! | `lock-order`   | RL-L001,         | no lock-acquisition cycles; static edges   |
//! |                | RL-X001/X002     | agree with the runtime lock witness        |
//! | `wire-drift`   | RL-W001..W003    | codec covers every struct field; protocol  |
//! |                |                  | edits bump `PROTOCOL_VERSION`              |
//! | `blocking`     | RL-B001/B002     | no blocking ops (recv/join/wait/IO/sleep)  |
//! |                |                  | while a lock is held, interprocedurally    |
//! | `shared-state` | RL-S001..S004    | no static mut, non-Sync statics, Relaxed   |
//! |                |                  | control-flow loads, or Arc::get_mut        |
//! | `hot-path`     | RL-A001/A002     | no heap allocation reachable from the      |
//! |                |                  | configured per-event hot functions         |

pub mod blocking;
pub mod determinism;
pub mod hot_path;
pub mod lock_order;
pub mod panic_path;
pub mod shared_state;
pub mod wire_drift;
pub mod witness;

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Rule family names as used in diagnostics and `lint:allow` markers.
pub const FAMILIES: [&str; 7] = [
    "determinism",
    "panic-path",
    "lock-order",
    "wire-drift",
    "blocking",
    "shared-state",
    "hot-path",
];

/// Pushes a diagnostic, marking it suppressed when an in-source
/// `lint:allow` marker covers it.
pub(crate) fn emit(
    out: &mut Vec<Diagnostic>,
    file: &SourceFile,
    code: &'static str,
    rule: &'static str,
    line: u32,
    message: String,
) {
    let suppressed = file.lexed.suppressed(line, rule, code);
    out.push(Diagnostic {
        code,
        rule,
        path: file.rel_path.clone(),
        line,
        message,
        suppressed,
    });
}

/// Whether the token texts starting at `i` equal `pat`.
pub(crate) fn seq_at(file: &SourceFile, i: usize, pat: &[&str]) -> bool {
    pat.iter()
        .enumerate()
        .all(|(k, p)| file.lexed.toks.get(i + k).is_some_and(|t| t.text == *p))
}
