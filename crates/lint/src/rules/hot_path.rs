//! RL-A001/RL-A002: heap allocation on designated hot paths.
//!
//! The per-event handlers of the sharded DES and the steal loop run
//! millions of times per simulated second; a `Vec::new`, `format!` or
//! heap `.clone()` there turns into allocator traffic that serializes
//! shards and wrecks the scaling the paper claims. `lint.toml`'s
//! `[hot_path]` section names the root functions (`hot_fns`); every
//! function reachable from a root through the call graph is hot.
//!
//! - **RL-A001** — an allocation directly inside a root hot function.
//! - **RL-A002** — an allocation in a transitive callee; the message
//!   carries the BFS call chain from the root.
//!
//! Setup-time allocations (building per-shard state before the event
//! loop spins) are deliberate keepers: `lint:allow(RL-A001)` with a
//! rationale, so the inventory stays visible.

use std::collections::BTreeSet;

use crate::callgraph::{CallGraph, Step};
use crate::diag::Diagnostic;
use crate::rules::emit;
use crate::source::SourceFile;

const RULE: &str = "hot-path";

/// `hot_fns` must resolve against the scoped files — a typo would
/// silently un-gate the whole family, so it is a config error instead.
pub fn check(
    files: &[SourceFile],
    hot_fns: &[String],
    out: &mut Vec<Diagnostic>,
) -> Result<(), String> {
    let graph = CallGraph::build(files);
    for name in hot_fns {
        if !graph.bodies.contains_key(name) {
            return Err(format!(
                "[hot_path] hot_fns names `{name}`, which is not a function in the \
                 configured paths"
            ));
        }
    }
    let reachable = graph.reachable(hot_fns);
    let mut seen: BTreeSet<(usize, u32, String)> = BTreeSet::new();
    for (fn_name, chain) in &reachable {
        let is_root = chain.len() == 1;
        for body in graph.bodies.get(fn_name).into_iter().flatten() {
            let Some(file) = files.get(body.file_idx) else {
                continue;
            };
            for step in &body.steps {
                let Step::Alloc { what, line, .. } = step else {
                    continue;
                };
                if !seen.insert((body.file_idx, *line, what.clone())) {
                    continue;
                }
                if is_root {
                    emit(
                        out,
                        file,
                        "RL-A001",
                        RULE,
                        *line,
                        format!("heap allocation ({what}) in hot function `{fn_name}`"),
                    );
                } else {
                    emit(
                        out,
                        file,
                        "RL-A002",
                        RULE,
                        *line,
                        format!(
                            "heap allocation ({what}) in `{fn_name}`, on the hot path \
                             {}",
                            chain.join(" -> ")
                        ),
                    );
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, roots: &[&str]) -> Result<Vec<Diagnostic>, String> {
        let f = SourceFile::new("x.rs".into(), src);
        let mut out = Vec::new();
        check(
            &[f],
            &roots.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &mut out,
        )?;
        Ok(out)
    }

    #[test]
    fn alloc_in_root_is_a001() {
        let src = "fn handle(&mut self) { let v = Vec::new(); }";
        let diags = run(src, &["handle"]).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL-A001");
        assert!(diags[0].message.contains("Vec::new"));
    }

    #[test]
    fn alloc_in_callee_is_a002_with_chain() {
        let src = "fn handle(&mut self) { self.route(e); }\nfn route(&mut self, e: E) { let s = format!(\"{e:?}\"); }";
        let diags = run(src, &["handle"]).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL-A002");
        assert!(diags[0].message.contains("handle -> route"));
    }

    #[test]
    fn alloc_off_the_hot_path_is_clean() {
        let src = "fn handle(&mut self) {}\nfn cold() { let v = vec![1, 2]; }";
        assert!(run(src, &["handle"]).unwrap().is_empty());
    }

    #[test]
    fn unresolved_root_is_a_config_error() {
        assert!(run("fn handle() {}", &["no_such_fn"]).is_err());
    }

    #[test]
    fn named_closure_can_be_a_root() {
        let src = "fn spawn_all() { let run_worker = move |ix: usize| { let v = x.to_vec(); }; }";
        let diags = run(src, &["run_worker"]).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL-A001");
    }
}
