//! RL-L001: lock-acquisition cycles.
//!
//! Rocket holds several locks on its hot paths (cache slot tables, steal
//! deques, the directory). A deadlock needs two threads acquiring the
//! same pair of locks in opposite orders; this rule approximates that
//! check statically on the shared call graph ([`crate::callgraph`]):
//!
//! 1. For every non-test function in scope, record the ordered sequence
//!    of lock acquisitions with their hold ranges (block-scoped for
//!    `let`-bound guards, statement-scoped for temporaries). An
//!    acquisition is a *zero-argument* `.lock()` / `.read()` /
//!    `.write()` call — the zero-argument requirement keeps
//!    `io::Read::read(&mut buf)` and friends out. The lock's name is
//!    the receiver identifier (field or method) nearest the call.
//! 2. Propagate acquisitions through resolved calls between in-scope
//!    functions to a fixpoint, so `a.lock(); helper();` sees the locks
//!    `helper` takes.
//! 3. Build the "held while acquiring" digraph over lock names and
//!    report every cycle.
//!
//! This is name-based: two fields spelled the same in different structs
//! alias, and an early `drop(guard)` is invisible. Rocket's lock
//! population is small enough that this approximation is useful, and
//! `lint:allow(lock-order)` documents the deliberate exceptions.
//!
//! The same edge set feeds the witness cross-check (`rocket-lint
//! --witness`, RL-X001/RL-X002 in [`crate::rules::witness`]).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, Step};
use crate::diag::Diagnostic;
use crate::rules::emit;
use crate::source::SourceFile;

const RULE: &str = "lock-order";

/// A "held while acquiring" edge with one witness location.
#[derive(Debug, Clone)]
pub(crate) struct StaticEdge {
    pub from: String,
    pub to: String,
    pub file_idx: usize,
    pub line: u32,
}

/// Derives the "held while acquiring" edges from the call graph: within
/// each body, every acquisition is held across the steps inside its hold
/// range; later direct acquisitions and callee lock sets become edge
/// targets. One witness location per distinct edge, first in sorted
/// body order.
pub(crate) fn static_edges(graph: &CallGraph) -> Vec<StaticEdge> {
    let effective = graph.effective_locks();
    let mut edges: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();
    for variants in graph.bodies.values() {
        for body in variants {
            for (i, held) in body.steps.iter().enumerate() {
                let Step::Acquire {
                    lock: held_lock,
                    until,
                    at,
                    ..
                } = held
                else {
                    continue;
                };
                for later in body.steps.iter().skip(i + 1) {
                    if later.at() <= *at || later.at() > *until {
                        continue;
                    }
                    match later {
                        Step::Acquire { lock, line, .. } if lock != held_lock => {
                            edges
                                .entry((held_lock.clone(), lock.clone()))
                                .or_insert((body.file_idx, *line));
                        }
                        Step::Call { callee, line, .. } => {
                            for lock in effective.get(callee).into_iter().flatten() {
                                if lock != held_lock {
                                    edges
                                        .entry((held_lock.clone(), lock.clone()))
                                        .or_insert((body.file_idx, *line));
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    edges
        .into_iter()
        .map(|((from, to), (file_idx, line))| StaticEdge {
            from,
            to,
            file_idx,
            line,
        })
        .collect()
}

pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let graph = CallGraph::build(files);
    let edges = static_edges(&graph);

    // Cycle detection: for each node in sorted order, DFS for a path
    // back to itself. Each cycle is reported once, keyed by its sorted
    // node set.
    let edge_map: BTreeMap<(String, String), &StaticEdge> = edges
        .iter()
        .map(|e| ((e.from.clone(), e.to.clone()), e))
        .collect();
    let adj: BTreeMap<&String, Vec<&String>> = {
        let mut m: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
        for e in &edges {
            m.entry(&e.from).or_default().push(&e.to);
        }
        m
    };
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in adj.keys() {
        if let Some(path) = find_cycle(start, &adj) {
            let mut key = path.clone();
            key.sort();
            key.dedup();
            if !reported.insert(key) {
                continue;
            }
            // Witness: the edge that closes the cycle back to `start`.
            let witness = path
                .windows(2)
                .filter_map(|w| edge_map.get(&(w[0].clone(), w[1].clone())))
                .next_back();
            let Some(witness) = witness else { continue };
            let Some(file) = files.get(witness.file_idx) else {
                continue;
            };
            emit(
                out,
                file,
                "RL-L001",
                RULE,
                witness.line,
                format!(
                    "lock-acquisition cycle: {} — two threads taking these locks in \
                     different orders can deadlock",
                    path.join(" -> ")
                ),
            );
        }
    }
}

/// DFS from `start`; returns a node path `start .. start` if a cycle
/// through `start` exists.
fn find_cycle<'a>(
    start: &'a String,
    adj: &BTreeMap<&'a String, Vec<&'a String>>,
) -> Option<Vec<String>> {
    let mut stack: Vec<(&String, usize)> = vec![(start, 0)];
    let mut path: Vec<&String> = vec![start];
    let mut visited: BTreeSet<&String> = BTreeSet::new();
    while let Some((node, idx)) = stack.last_mut() {
        let next = adj.get(*node).and_then(|ns| ns.get(*idx));
        match next {
            Some(&n) => {
                *idx += 1;
                if n == start {
                    let mut cycle: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                    cycle.push(start.to_string());
                    return Some(cycle);
                }
                if visited.insert(n) {
                    stack.push((n, 0));
                    path.push(n);
                }
            }
            None => {
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("x.rs".into(), src);
        let mut out = Vec::new();
        check(&[f], &mut out);
        out
    }

    #[test]
    fn opposite_orders_in_two_fns_cycle() {
        let src = "fn a(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); }\nfn b(&self) { let h = self.beta.lock(); let g = self.alpha.lock(); }\n";
        let diags = run(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL-L001");
        assert!(diags[0].message.contains("alpha"));
        assert!(diags[0].message.contains("beta"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "fn a(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); }\nfn b(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn interprocedural_cycle_found() {
        let src = "fn outer(&self) { let g = self.alpha.lock(); helper(self); }\nfn helper(s: &S) { let h = s.beta.lock(); }\nfn other(&self) { let h = self.beta.lock(); let g = self.alpha.lock(); }\n";
        let diags = run(src);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn io_read_with_args_is_not_a_lock() {
        let src = "fn pump(s: &mut TcpStream) { let mut b = [0u8; 8]; let n = s.read(&mut b); }\nfn other(&self) { let g = self.read_lock.read(); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn rwlock_read_write_participate() {
        let src = "fn a(&self) { let g = self.table.read(); let h = self.queue.lock(); }\nfn b(&self) { let h = self.queue.lock(); let g = self.table.write(); }\n";
        let diags = run(src);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn reacquiring_same_lock_is_not_a_cycle() {
        let src =
            "fn a(&self) { let g = self.alpha.lock(); drop(g); let h = self.alpha.lock(); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn scoped_guards_do_not_edge() {
        // The alpha guard dies at its inner block's brace before beta is
        // taken, so the opposite order elsewhere is not a cycle.
        let src = "fn a(&self) { { let g = self.alpha.lock(); } let h = self.beta.lock(); }\nfn b(&self) { let h = self.beta.lock(); let g = self.alpha.lock(); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn statement_temporaries_do_not_edge() {
        let src = "fn a(&self) { self.alpha.lock().push(1); let h = self.beta.lock(); }\nfn b(&self) { self.beta.lock().push(2); let g = self.alpha.lock(); }\n";
        assert!(run(src).is_empty());
    }
}
