//! RL-L001: lock-acquisition cycles.
//!
//! Rocket holds several locks on its hot paths (cache slot tables, steal
//! deques, the directory). A deadlock needs two threads acquiring the
//! same pair of locks in opposite orders; this rule approximates that
//! check statically:
//!
//! 1. For every non-test function in scope, record the ordered sequence
//!    of lock acquisitions. An acquisition is a *zero-argument*
//!    `.lock()` / `.read()` / `.write()` call — the zero-argument
//!    requirement keeps `io::Read::read(&mut buf)` and friends out. The
//!    lock's name is the receiver identifier (field or method) nearest
//!    the call.
//! 2. Propagate acquisitions through direct calls between in-scope
//!    functions to a fixpoint, so `a.lock(); helper();` sees the locks
//!    `helper` takes.
//! 3. Build the "held while acquiring" digraph over lock names and
//!    report every cycle.
//!
//! This is name-based and flow-insensitive: two fields spelled the same
//! in different structs alias, and an early `drop(guard)` is invisible.
//! Rocket's lock population is small enough that this approximation is
//! useful, and `lint:allow(lock-order)` documents the deliberate
//! exceptions.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::rules::emit;
use crate::source::SourceFile;

const RULE: &str = "lock-order";

/// One lock acquisition (or call site) inside a function body.
#[derive(Debug, Clone)]
enum Step {
    Acquire { lock: String, line: u32 },
    Call { callee: String, line: u32 },
}

/// Walks back from the `.` of `.lock()` to the receiver identifier,
/// skipping one balanced `(...)`/`[...]` group (so `self.slots[i].lock()`
/// and `self.table().lock()` both resolve sensibly).
fn receiver_name(file: &SourceFile, dot: usize) -> Option<String> {
    let toks = &file.lexed.toks;
    let mut i = dot.checked_sub(1)?;
    loop {
        let t = toks.get(i)?;
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, ")") | (TokKind::Punct, "]") => {
                // Skip the balanced group backwards.
                let (open, close) = if t.text == ")" {
                    ("(", ")")
                } else {
                    ("[", "]")
                };
                let mut depth = 0isize;
                loop {
                    let u = toks.get(i)?;
                    if u.kind == TokKind::Punct {
                        if u.text == close {
                            depth += 1;
                        } else if u.text == open {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                    }
                    i = i.checked_sub(1)?;
                }
                i = i.checked_sub(1)?;
            }
            (TokKind::Ident, "self") => return None, // bare `self.lock()`: keep looking? no — name it "self"
            (TokKind::Ident, name) => return Some(name.to_string()),
            _ => return None,
        }
    }
}

/// Extracts the acquisition/call sequence of one function body.
fn body_steps(
    file: &SourceFile,
    start: usize,
    end: usize,
    fn_names: &BTreeSet<String>,
) -> Vec<Step> {
    let toks = &file.lexed.toks;
    let mut steps = Vec::new();
    let mut i = start;
    while i <= end && i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            let is_acquire = match t.text.as_str() {
                // `.lock(...)` with any arguments still blocks; only the
                // read/write pair needs the zero-arg restriction to dodge
                // io::Read/Write.
                "lock" => {
                    i > 0
                        && toks[i - 1].text == "."
                        && toks.get(i + 1).is_some_and(|n| n.text == "(")
                }
                "read" | "write" => {
                    i > 0
                        && toks[i - 1].text == "."
                        && toks.get(i + 1).is_some_and(|n| n.text == "(")
                        && toks.get(i + 2).is_some_and(|n| n.text == ")")
                }
                _ => false,
            };
            if is_acquire {
                if let Some(lock) = receiver_name(file, i - 1) {
                    steps.push(Step::Acquire { lock, line: t.line });
                }
                i += 1;
                continue;
            }
            // A direct call to another in-scope function: `name(...)`
            // not preceded by `.` (method calls on other objects are out
            // of reach for this approximation).
            if fn_names.contains(&t.text)
                && toks.get(i + 1).is_some_and(|n| n.text == "(")
                && (i == 0 || toks[i - 1].text != ".")
                && (i == 0 || toks[i - 1].text != "fn")
            {
                steps.push(Step::Call {
                    callee: t.text.clone(),
                    line: t.line,
                });
            }
        }
        i += 1;
    }
    steps
}

/// A "held while acquiring" edge with one witness location.
#[derive(Debug, Clone)]
struct Edge {
    file_idx: usize,
    line: u32,
}

pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    // Function name → steps (merged across files; name collisions merge
    // conservatively, which can only add edges).
    let fn_names: BTreeSet<String> = files
        .iter()
        .flat_map(|f| f.fns().into_iter().map(|s| s.name))
        .collect();
    let mut bodies: BTreeMap<String, Vec<(usize, Vec<Step>)>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for span in file.fns() {
            let steps = body_steps(file, span.body_start, span.body_end, &fn_names);
            bodies.entry(span.name).or_default().push((fi, steps));
        }
    }

    // Effective lock set per function: locks it (transitively) acquires.
    let mut effective: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    loop {
        let mut changed = false;
        for (name, variants) in &bodies {
            let mut locks: BTreeSet<String> = effective.get(name).cloned().unwrap_or_default();
            let before = locks.len();
            for (_, steps) in variants {
                for step in steps {
                    match step {
                        Step::Acquire { lock, .. } => {
                            locks.insert(lock.clone());
                        }
                        Step::Call { callee, .. } => {
                            if let Some(sub) = effective.get(callee) {
                                locks.extend(sub.iter().cloned());
                            }
                        }
                    }
                }
            }
            if locks.len() != before || !effective.contains_key(name) {
                changed = true;
            }
            effective.insert(name.clone(), locks);
        }
        if !changed {
            break;
        }
    }

    // Edges: within each body, every acquisition is "held" across every
    // later step; later direct acquisitions and callee lock sets become
    // edge targets.
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for variants in bodies.values() {
        for (fi, steps) in variants {
            for (i, held) in steps.iter().enumerate() {
                let Step::Acquire {
                    lock: held_lock, ..
                } = held
                else {
                    continue;
                };
                for later in steps.iter().skip(i + 1) {
                    match later {
                        Step::Acquire { lock, line } => {
                            if lock != held_lock {
                                edges
                                    .entry((held_lock.clone(), lock.clone()))
                                    .or_insert(Edge {
                                        file_idx: *fi,
                                        line: *line,
                                    });
                            }
                        }
                        Step::Call { callee, line } => {
                            for lock in effective.get(callee).into_iter().flatten() {
                                if lock != held_lock {
                                    edges.entry((held_lock.clone(), lock.clone())).or_insert(
                                        Edge {
                                            file_idx: *fi,
                                            line: *line,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Cycle detection: for each node in sorted order, DFS for a path
    // back to itself. Each cycle is reported once, keyed by its sorted
    // node set.
    let adj: BTreeMap<&String, Vec<&String>> = {
        let mut m: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
        for (a, b) in edges.keys().map(|(a, b)| (a, b)) {
            m.entry(a).or_default().push(b);
        }
        m
    };
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in adj.keys() {
        if let Some(path) = find_cycle(start, &adj) {
            let mut key = path.clone();
            key.sort();
            key.dedup();
            if !reported.insert(key) {
                continue;
            }
            // Witness: the edge that closes the cycle back to `start`.
            let witness = path
                .windows(2)
                .filter_map(|w| edges.get(&(w[0].clone(), w[1].clone())))
                .next_back();
            let Some(witness) = witness else { continue };
            let Some(file) = files.get(witness.file_idx) else {
                continue;
            };
            emit(
                out,
                file,
                "RL-L001",
                RULE,
                witness.line,
                format!(
                    "lock-acquisition cycle: {} — two threads taking these locks in \
                     different orders can deadlock",
                    path.join(" -> ")
                ),
            );
        }
    }
}

/// DFS from `start`; returns a node path `start .. start` if a cycle
/// through `start` exists.
fn find_cycle<'a>(
    start: &'a String,
    adj: &BTreeMap<&'a String, Vec<&'a String>>,
) -> Option<Vec<String>> {
    let mut stack: Vec<(&String, usize)> = vec![(start, 0)];
    let mut path: Vec<&String> = vec![start];
    let mut visited: BTreeSet<&String> = BTreeSet::new();
    while let Some((node, idx)) = stack.last_mut() {
        let next = adj.get(*node).and_then(|ns| ns.get(*idx));
        match next {
            Some(&n) => {
                *idx += 1;
                if n == start {
                    let mut cycle: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                    cycle.push(start.to_string());
                    return Some(cycle);
                }
                if visited.insert(n) {
                    stack.push((n, 0));
                    path.push(n);
                }
            }
            None => {
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("x.rs".into(), src);
        let mut out = Vec::new();
        check(&[f], &mut out);
        out
    }

    #[test]
    fn opposite_orders_in_two_fns_cycle() {
        let src = "fn a(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); }\nfn b(&self) { let h = self.beta.lock(); let g = self.alpha.lock(); }\n";
        let diags = run(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL-L001");
        assert!(diags[0].message.contains("alpha"));
        assert!(diags[0].message.contains("beta"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "fn a(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); }\nfn b(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn interprocedural_cycle_found() {
        let src = "fn outer(&self) { let g = self.alpha.lock(); helper(self); }\nfn helper(s: &S) { let h = s.beta.lock(); }\nfn other(&self) { let h = self.beta.lock(); let g = self.alpha.lock(); }\n";
        let diags = run(src);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn io_read_with_args_is_not_a_lock() {
        let src = "fn pump(s: &mut TcpStream) { let mut b = [0u8; 8]; let n = s.read(&mut b); }\nfn other(&self) { let g = self.read_lock.read(); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn rwlock_read_write_participate() {
        let src = "fn a(&self) { let g = self.table.read(); let h = self.queue.lock(); }\nfn b(&self) { let h = self.queue.lock(); let g = self.table.write(); }\n";
        let diags = run(src);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn reacquiring_same_lock_is_not_a_cycle() {
        let src =
            "fn a(&self) { let g = self.alpha.lock(); drop(g); let h = self.alpha.lock(); }\n";
        assert!(run(src).is_empty());
    }
}
