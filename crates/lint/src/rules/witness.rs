//! RL-X001/RL-X002: static-vs-dynamic lock-order cross-check.
//!
//! `cargo test --features sanitize` runs the suite with instrumented
//! lock guards (`rocket-sanitize`): every acquisition records which
//! named locks were already held, building the *witnessed* edge set, and
//! each process dumps a witness JSON (`witness-<pid>.json` under
//! `$ROCKET_WITNESS_DIR`). `rocket-lint --witness PATH` (a file or a
//! directory of witness files, merged) compares that against the static
//! model from [`crate::rules::lock_order`]:
//!
//! - **RL-X001** — a static edge between two *witnessed* locks that was
//!   never observed at runtime: the static model is stale (an
//!   overapproximation worth a `lint:allow(RL-X001)` rationale at the
//!   edge's source line) or a suppression outlived the code it excused.
//!   Edges touching locks the test run never exercised are skipped —
//!   absence of evidence is not disagreement.
//! - **RL-X002** — a witnessed edge the static pass never derived: an
//!   analysis gap (unresolved call, dynamic dispatch, name drift
//!   between the `Mutex::named` label and the field). Hard failure at
//!   the witness file itself; fix the model or the label.
//!
//! The witness format is `{"schema": 1, "locks": [...], "edges":
//! [{"from": .., "to": ..}]}`, parsed by the minimal JSON reader below
//! (no serde in the lint crate).

use std::collections::BTreeSet;
use std::path::Path;

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::rules::emit;
use crate::rules::lock_order::static_edges;
use crate::source::SourceFile;

const RULE: &str = "lock-order";

/// Merged witness data from one or more sanitize runs.
#[derive(Debug, Default, Clone)]
pub struct Witness {
    pub locks: BTreeSet<String>,
    pub edges: BTreeSet<(String, String)>,
}

impl Witness {
    /// Loads a witness file, or merges every `*.json` in a directory.
    pub fn load(path: &Path) -> Result<Witness, String> {
        let mut w = Witness::default();
        if path.is_dir() {
            let mut files: Vec<_> = std::fs::read_dir(path)
                .map_err(|e| format!("read {}: {e}", path.display()))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect();
            files.sort();
            if files.is_empty() {
                return Err(format!(
                    "witness directory {} holds no .json files — did the sanitize \
                     run set ROCKET_WITNESS_DIR?",
                    path.display()
                ));
            }
            for f in files {
                w.merge_file(&f)?;
            }
        } else {
            w.merge_file(path)?;
        }
        Ok(w)
    }

    fn merge_file(&mut self, path: &Path) -> Result<(), String> {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let value = Json::parse(&src).map_err(|e| format!("{}: {e}", path.display()))?;
        let schema = value
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{}: missing \"schema\"", path.display()))?;
        if schema != 1 {
            return Err(format!(
                "{}: unsupported witness schema {schema} (expected 1)",
                path.display()
            ));
        }
        for lock in value.get("locks").and_then(Json::as_array).unwrap_or(&[]) {
            if let Some(s) = lock.as_str() {
                self.locks.insert(s.to_string());
            }
        }
        for edge in value.get("edges").and_then(Json::as_array).unwrap_or(&[]) {
            let (Some(from), Some(to)) = (
                edge.get("from").and_then(Json::as_str),
                edge.get("to").and_then(Json::as_str),
            ) else {
                return Err(format!("{}: edge without from/to", path.display()));
            };
            self.edges.insert((from.to_string(), to.to_string()));
        }
        Ok(())
    }
}

/// Cross-checks the static edge set against the witness. `witness_path`
/// is only used as the diagnostic location for RL-X002 (there is no
/// source line for an edge the model never derived).
pub fn check(
    files: &[SourceFile],
    witness: &Witness,
    witness_path: &str,
    out: &mut Vec<Diagnostic>,
) {
    let graph = CallGraph::build(files);
    let edges = static_edges(&graph);
    let static_set: BTreeSet<(String, String)> = edges
        .iter()
        .map(|e| (e.from.clone(), e.to.clone()))
        .collect();

    for e in &edges {
        // Only edges whose *both* locks were exercised by the sanitize
        // run can be contradicted by it.
        if !witness.locks.contains(&e.from) || !witness.locks.contains(&e.to) {
            continue;
        }
        if !witness.edges.contains(&(e.from.clone(), e.to.clone())) {
            let Some(file) = files.get(e.file_idx) else {
                continue;
            };
            emit(
                out,
                file,
                "RL-X001",
                RULE,
                e.line,
                format!(
                    "static lock edge `{}` -> `{}` was never witnessed at runtime — \
                     stale model or dead suppression",
                    e.from, e.to
                ),
            );
        }
    }
    for (from, to) in &witness.edges {
        if !static_set.contains(&(from.clone(), to.clone())) {
            out.push(Diagnostic {
                code: "RL-X002",
                rule: RULE,
                path: witness_path.to_string(),
                line: 0,
                message: format!(
                    "runtime witnessed lock edge `{from}` -> `{to}` that the static \
                     model never derived — analysis gap or Mutex::named label drift"
                ),
                suppressed: false,
            });
        }
    }
}

/// A minimal JSON value and recursive-descent parser — just enough for
/// the witness format (objects, arrays, strings, unsigned integers,
/// booleans, null).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    Str(String),
    Num(u64),
    Bool(bool),
    Null,
}

impl Json {
    pub(crate) fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at offset {}", b as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let val = parse_value(bytes, pos)?;
                pairs.push((key, val));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at offset {start}"))
        }
        _ => Err(format!("unexpected byte at offset {pos}")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid utf-8 in string".to_string())
            }
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("dangling escape")?;
                *pos += 1;
                match esc {
                    b'"' | b'\\' | b'/' => out.push(esc),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    other => return Err(format!("unsupported escape `\\{}`", other as char)),
                }
            }
            other => out.push(other),
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn witness(locks: &[&str], edges: &[(&str, &str)]) -> Witness {
        Witness {
            locks: locks.iter().map(|s| s.to_string()).collect(),
            edges: edges
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
        }
    }

    const SRC: &str =
        "fn ingest(&self) { let a = self.intake.lock(); let b = self.ledger.lock(); }";

    fn run(w: &Witness) -> Vec<Diagnostic> {
        let f = SourceFile::new("x.rs".into(), SRC);
        let mut out = Vec::new();
        check(&[f], w, "witness.json", &mut out);
        out
    }

    #[test]
    fn matching_edge_is_clean() {
        let w = witness(&["intake", "ledger"], &[("intake", "ledger")]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn unwitnessed_static_edge_is_x001() {
        let w = witness(&["intake", "ledger"], &[]);
        let diags = run(&w);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL-X001");
        assert_eq!(diags[0].path, "x.rs");
    }

    #[test]
    fn unexercised_lock_is_not_contradicted() {
        // The run never touched `ledger`, so the static edge stands.
        let w = witness(&["intake"], &[]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn unmodeled_dynamic_edge_is_x002() {
        let w = witness(
            &["intake", "ledger"],
            &[("intake", "ledger"), ("ledger", "intake")],
        );
        let diags = run(&w);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL-X002");
        assert_eq!(diags[0].path, "witness.json");
        assert!(diags[0].message.contains("`ledger` -> `intake`"));
    }

    #[test]
    fn json_parser_roundtrips_witness() {
        let src = r#"{"schema": 1, "locks": ["a", "b"], "edges": [{"from": "a", "to": "b"}]}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("schema").and_then(Json::as_u64), Some(1));
        let locks = v.get("locks").and_then(Json::as_array).unwrap();
        assert_eq!(locks.len(), 2);
        let edges = v.get("edges").and_then(Json::as_array).unwrap();
        assert_eq!(edges[0].get("from").and_then(Json::as_str), Some("a"));
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let dir = std::env::temp_dir().join("rocket-lint-witness-schema-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("w.json");
        std::fs::write(&p, r#"{"schema": 9, "locks": [], "edges": []}"#).unwrap();
        let err = Witness::load(&p).unwrap_err();
        assert!(err.contains("unsupported witness schema 9"), "{err}");
    }
}
