//! RL-D001..RL-D004: sources of run-to-run nondeterminism in the
//! simulation core.
//!
//! The engine's contract is bit-identical replay for a fixed seed
//! (ROADMAP: "same scenario, same numbers"). Four things break that
//! contract silently:
//!
//! - **RL-D001** — `std::collections::HashMap`/`HashSet`: the std hasher
//!   is randomly keyed per process, so iteration order varies between
//!   runs. Use `rocket_cache::FxHashMap`/`FxHashSet` (deterministic
//!   hasher) or a dense index-keyed table.
//! - **RL-D002** — `Instant::now()` / `SystemTime`: wall-clock reads feed
//!   host timing into simulated results. Use `rocket_core::clock`.
//! - **RL-D003** — `thread::sleep`: host-timed pauses in scoped code.
//!   Use `rocket_core::clock::pace` where pacing is genuinely wanted.
//! - **RL-D004** — unseeded RNG entry points (`thread_rng`,
//!   `from_entropy`, `OsRng`, `getrandom`): all randomness must flow from
//!   the scenario seed.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::rules::{emit, seq_at};
use crate::source::SourceFile;

const RULE: &str = "determinism";

/// Idents that mean "entropy not derived from the scenario seed".
const UNSEEDED: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Scans one file (already scoped by the caller).
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if file.is_test(i) || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" => emit(
                out,
                file,
                "RL-D001",
                RULE,
                t.line,
                format!(
                    "std {} iterates in randomized order; use rocket_cache::Fx{} or a dense table",
                    t.text, t.text
                ),
            ),
            "Instant" if seq_at(file, i, &["Instant", ":", ":", "now"]) => emit(
                out,
                file,
                "RL-D002",
                RULE,
                t.line,
                "wall-clock read (Instant::now) in deterministic code; use rocket_core::clock"
                    .into(),
            ),
            "SystemTime" => emit(
                out,
                file,
                "RL-D002",
                RULE,
                t.line,
                "wall-clock read (SystemTime) in deterministic code; use rocket_core::clock".into(),
            ),
            "thread" if seq_at(file, i, &["thread", ":", ":", "sleep"]) => emit(
                out,
                file,
                "RL-D003",
                RULE,
                t.line,
                "host-timed sleep in deterministic code; use rocket_core::clock::pace".into(),
            ),
            name if UNSEEDED.contains(&name) => emit(
                out,
                file,
                "RL-D004",
                RULE,
                t.line,
                format!(
                    "unseeded randomness ({name}); derive all RNG state from the scenario seed"
                ),
            ),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("x.rs".into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_all_four_codes() {
        let src = "use std::collections::HashMap;\nfn f() {\n    let t = std::time::Instant::now();\n    std::thread::sleep(d);\n    let r = thread_rng();\n}\n";
        let codes: Vec<_> = run(src).iter().map(|d| d.code).collect();
        assert_eq!(codes, ["RL-D001", "RL-D002", "RL-D003", "RL-D004"]);
    }

    #[test]
    fn fx_collections_are_clean() {
        assert!(run(
            "use rocket_cache::{FxHashMap, FxHashSet};\nfn f() { let m = FxHashMap::default(); }\n"
        )
        .is_empty());
    }

    #[test]
    fn instant_as_plain_type_is_not_a_read() {
        // Storing an Instant handed in from elsewhere is fine; only the
        // `::now()` read is flagged.
        assert!(run("fn f(t: Instant) -> Instant { t }\n").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let m = std::collections::HashMap::new(); }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "fn f() {\n    // lint:allow(determinism) — rationale\n    let t = std::time::Instant::now();\n}\n";
        let diags = run(src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].suppressed);
    }
}
