//! RL-B001/RL-B002: blocking while holding a lock.
//!
//! A thread that blocks — on a channel `recv`, a `join`, a condvar or
//! barrier `wait`, stream IO, `thread::sleep`/`clock::pace` — while
//! holding a lock extends that lock's critical section by an unbounded
//! amount and is one lock-inversion away from a deadlock. The elasticity
//! story depends on the fault path never doing this.
//!
//! - **RL-B001** — a blocking operation appears directly inside a lock's
//!   hold range.
//! - **RL-B002** — a call inside a hold range resolves (transitively,
//!   across files and crates) to a function that can block; the message
//!   carries the witness call chain.
//!
//! Hold ranges are block-scoped for `let`-bound guards and
//! statement-scoped for temporaries (see [`crate::callgraph`]); an early
//! `drop(guard)` is invisible, so deliberate wait-under-lock patterns
//! (condvars *require* one) carry `lint:allow(RL-B001)` with a
//! rationale.

use std::collections::BTreeSet;

use crate::callgraph::{CallGraph, Step};
use crate::diag::Diagnostic;
use crate::rules::emit;
use crate::source::SourceFile;

const RULE: &str = "blocking";

pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let graph = CallGraph::build(files);
    let may_block = graph.may_block();
    // Closure spans nest inside their enclosing fn's span, so the same
    // token can surface twice; dedup on (file, line, code, message).
    let mut seen: BTreeSet<(usize, u32, &'static str, String)> = BTreeSet::new();
    for variants in graph.bodies.values() {
        for body in variants {
            let Some(file) = files.get(body.file_idx) else {
                continue;
            };
            for (i, held) in body.steps.iter().enumerate() {
                let Step::Acquire {
                    lock, at, until, ..
                } = held
                else {
                    continue;
                };
                for later in body.steps.iter().skip(i + 1) {
                    if later.at() <= *at || later.at() > *until {
                        continue;
                    }
                    match later {
                        Step::Block { what, line, .. } => {
                            let msg = format!(
                                "{what} while holding lock `{lock}` — the critical \
                                 section blocks for an unbounded time"
                            );
                            if seen.insert((body.file_idx, *line, "RL-B001", msg.clone())) {
                                emit(out, file, "RL-B001", RULE, *line, msg);
                            }
                        }
                        Step::Call { callee, line, .. } => {
                            if let Some(chain) = may_block.get(callee) {
                                let msg = format!(
                                    "call may block ({}) while holding lock `{lock}`",
                                    chain.render(callee)
                                );
                                if seen.insert((body.file_idx, *line, "RL-B002", msg.clone())) {
                                    emit(out, file, "RL-B002", RULE, *line, msg);
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(srcs: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, s)| SourceFile::new(p.to_string(), s))
            .collect();
        let mut out = Vec::new();
        check(&files, &mut out);
        out
    }

    #[test]
    fn recv_under_lock_is_b001() {
        let src = "fn f(&self) { let g = self.m.lock(); let x = self.rx.recv(); }";
        let diags = run(&[("a.rs", src)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL-B001");
        assert!(diags[0].message.contains("`m`"));
    }

    #[test]
    fn recv_after_scope_is_clean() {
        let src = "fn f(&self) { { let g = self.m.lock(); g.push(1); } let x = self.rx.recv(); }";
        assert!(run(&[("a.rs", src)]).is_empty());
    }

    #[test]
    fn transitive_blocking_across_files_is_b002() {
        let a = "fn send(&self) { self.stream.write_all(b); }";
        let b = "fn publish(&self) { let g = self.m.lock(); self.peer.send(x); }";
        let diags = run(&[("comm.rs", a), ("driver.rs", b)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RL-B002");
        assert_eq!(diags[0].path, "driver.rs");
        assert!(
            diags[0].message.contains("send -> stream IO"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn blocking_without_lock_is_clean() {
        let src = "fn f(&self) { let x = self.rx.recv(); let g = self.m.lock(); }";
        assert!(run(&[("a.rs", src)]).is_empty());
    }

    #[test]
    fn condvar_wait_under_lock_is_b001() {
        let src = "fn acquire(&self) { let mut avail = self.available.lock(); self.cond.wait_while(&mut avail, |a| *a == 0); }";
        let diags = run(&[("a.rs", src)]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("condvar/barrier wait"));
    }

    #[test]
    fn suppression_marks_finding() {
        let src = "fn f(&self) { let g = self.m.lock();\n    // lint:allow(RL-B001) — bounded by test harness\n    let x = self.rx.recv(); }";
        let diags = run(&[("a.rs", src)]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].suppressed);
    }
}
