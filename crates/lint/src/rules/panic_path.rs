//! RL-P001..RL-P003: aborts on fault-critical paths.
//!
//! The configured files are the code that runs *while the cluster is
//! degrading* — the driver's event loop, worker serve loops, socket
//! reader threads, liveness tracking. A panic there converts a survivable
//! fault (a peer died, a frame tore) into the loss of the local process,
//! which is exactly the failure mode §5's fault-tolerance design exists
//! to avoid. Faults must surface as typed errors or logged degradation.
//!
//! - **RL-P001** — `.unwrap()` / `.expect(...)`
//! - **RL-P002** — `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//! - **RL-P003** — slice/array indexing `x[i]` (use `.get()` and handle
//!   the miss)
//!
//! Test code is exempt; `assert!` is allowed (invariant checks at
//! construction time are legitimate).

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::rules::{emit, seq_at};
use crate::source::SourceFile;

const RULE: &str = "panic-path";

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can directly precede `[` without it being an index
/// expression (slice patterns, array types/literals in statements).
const NON_INDEX_KEYWORDS: [&str; 12] = [
    "let", "mut", "ref", "in", "if", "while", "match", "return", "break", "else", "move", "box",
];

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if file.is_test(i) {
            continue;
        }
        match t.text.as_str() {
            "unwrap" if i > 0 && seq_at(file, i - 1, &[".", "unwrap", "(", ")"]) => emit(
                out,
                file,
                "RL-P001",
                RULE,
                t.line,
                "unwrap() on a fault path; return a typed error or degrade with a log".into(),
            ),
            "expect" if i > 0 && toks[i - 1].text == "." && seq_at(file, i, &["expect", "("]) => {
                emit(
                    out,
                    file,
                    "RL-P001",
                    RULE,
                    t.line,
                    "expect() on a fault path; return a typed error or degrade with a log".into(),
                )
            }
            name if PANIC_MACROS.contains(&name)
                && toks.get(i + 1).is_some_and(|n| n.text == "!") =>
            {
                emit(
                    out,
                    file,
                    "RL-P002",
                    RULE,
                    t.line,
                    format!("{name}! aborts the process on a fault path; surface an error instead"),
                )
            }
            "[" if t.kind == TokKind::Punct && i > 0 => {
                let prev = &toks[i - 1];
                let indexes = match prev.kind {
                    TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                    TokKind::Punct => prev.text == "]" || prev.text == ")",
                    _ => false,
                };
                if indexes {
                    emit(
                        out,
                        file,
                        "RL-P003",
                        RULE,
                        t.line,
                        "slice indexing can panic on a fault path; use .get() and handle the miss"
                            .into(),
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("x.rs".into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_panics_and_indexing() {
        let src = "fn f(v: Vec<u32>) {\n    let a = v.first().unwrap();\n    let b = o.expect(\"msg\");\n    panic!(\"boom\");\n    let c = v[0];\n}\n";
        let codes: Vec<_> = run(src).iter().map(|d| d.code).collect();
        assert_eq!(codes, ["RL-P001", "RL-P001", "RL-P002", "RL-P003"]);
    }

    #[test]
    fn unwrap_or_else_and_relatives_are_clean() {
        let src = "fn f() {\n    let a = m.lock().unwrap_or_else(|e| e.into_inner());\n    let b = o.unwrap_or_default();\n    let c = o.unwrap_or(3);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn attributes_macros_and_types_are_not_indexing() {
        let src = "#[derive(Debug)]\nfn f(buf: &mut [u8; 4]) {\n    let v = vec![0u8; 4];\n    let [a, b] = pair;\n    for x in [1, 2] {}\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn call_result_indexing_is_flagged() {
        assert_eq!(run("fn f() { let x = g()[0]; }\n").len(), 1);
    }

    #[test]
    fn assert_is_allowed() {
        assert!(run("fn f(n: usize) { assert!(n > 0, \"positive\"); }\n").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[test]\nfn t() { v[0].unwrap(); panic!(); }\n";
        assert!(run(src).is_empty());
    }
}
