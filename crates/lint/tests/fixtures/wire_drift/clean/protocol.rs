//! Fixture protocol file: version and message enums in sync.
//! Never compiled — scanned by rocket-lint's fixture tests.

pub const PROTOCOL_VERSION: u32 = 1;

pub enum ToWorker {
    Job { spec: JobSpec },
    Shutdown,
}

pub enum ToDriver {
    Done { result: JobResult },
    Failed { id: u64 },
}
