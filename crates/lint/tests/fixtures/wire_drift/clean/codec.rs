//! Fixture: complete Wire impls for model.rs.
//! Never compiled — scanned by rocket-lint's fixture tests.

impl Wire for JobSpec {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.id);
        w.put_u32(self.shard);
        w.put_u8(self.retries);
    }
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        let id = r.u64()?;
        let shard = r.u32()?;
        let retries = r.u8()?;
        Ok(JobSpec { id, shard, retries })
    }
}

impl Wire for JobResult {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.id);
        w.put_u64(self.pairs);
        w.put_u64(self.elapsed_us);
    }
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(JobResult {
            id: r.u64()?,
            pairs: r.u64()?,
            elapsed_us: r.u64()?,
        })
    }
}
