//! Fixture: wire structs whose codec (codec.rs) is complete.
//! Never compiled — scanned by rocket-lint's fixture tests.

pub struct JobSpec {
    pub id: u64,
    pub shard: u32,
    pub retries: u8,
}

pub struct JobResult {
    pub id: u64,
    pub pairs: u64,
    pub elapsed_us: u64,
}
