//! Fixture protocol file: a new `Ping` message was added but
//! PROTOCOL_VERSION was not bumped. Never compiled — scanned by
//! rocket-lint's fixture tests.

pub const PROTOCOL_VERSION: u32 = 1;

pub enum ToWorker {
    Job { spec: JobSpec },
    Ping { nonce: u64 },
    Shutdown,
}

pub enum ToDriver {
    Done { result: JobResult },
    Failed { id: u64 },
}
