//! Fixture: a two-lock ordering inversion across two functions
//! (RL-L001). Never compiled — scanned by rocket-lint's fixture tests.

pub struct Shared {
    jobs: Mutex<Vec<u32>>,
    stats: Mutex<u64>,
}

impl Shared {
    /// Takes `jobs` then `stats`.
    pub fn submit(&self, id: u32) {
        let mut jobs = self.jobs.lock();
        jobs.push(id);
        let mut stats = self.stats.lock();
        *stats += 1;
    }

    /// Takes `stats` then `jobs` — inverted; deadlocks against
    /// `submit` under contention.
    pub fn report(&self) -> (u64, usize) {
        let stats = self.stats.lock();
        let jobs = self.jobs.lock();
        (*stats, jobs.len())
    }
}
