//! Fixture: consistent lock ordering and non-lock `.read()` calls that
//! the lock-order rule must NOT flag. Never compiled — scanned by
//! rocket-lint's fixture tests.

pub struct Shared {
    jobs: Mutex<Vec<u32>>,
    stats: Mutex<u64>,
}

impl Shared {
    /// Takes `jobs` then `stats`.
    pub fn submit(&self, id: u32) {
        let mut jobs = self.jobs.lock();
        jobs.push(id);
        let mut stats = self.stats.lock();
        *stats += 1;
    }

    /// Same order: `jobs` then `stats`.
    pub fn drain(&self) -> u64 {
        let mut jobs = self.jobs.lock();
        jobs.clear();
        let stats = self.stats.lock();
        *stats
    }
}

/// `io::Read::read` takes an argument, so it is not a lock acquisition.
pub fn pump(stream: &mut TcpStream, table: &RwLock<u64>) -> u64 {
    let mut chunk = [0u8; 1024];
    let _n = stream.read(&mut chunk);
    let guard = table.read();
    *guard
}
