//! Violating fixture for the shared-state family (RL-S001..S004).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// RL-S001: mutable static — data race by construction.
static mut HITS: u64 = 0;

/// RL-S002: a non-Sync payload in a shared static.
static SCRATCH: RefCell<u64> = RefCell::new(0);

static READY: AtomicBool = AtomicBool::new(false);

/// RL-S003: a Relaxed load deciding a branch.
pub fn serve(jobs: &[u64]) -> u64 {
    if READY.load(Ordering::Relaxed) {
        jobs.iter().sum()
    } else {
        0
    }
}

/// RL-S004: Arc::get_mut silently yields None under sharing.
pub fn tweak(shared: &mut Arc<Vec<u64>>) {
    if let Some(v) = Arc::get_mut(shared) {
        v.reverse();
    }
}
