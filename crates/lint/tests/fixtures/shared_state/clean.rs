//! Clean fixture for the shared-state family: the sound spellings of
//! every pattern the violating file abuses.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Atomics and Sync payloads in statics are fine.
static HITS: AtomicU64 = AtomicU64::new(0);
static READY: AtomicBool = AtomicBool::new(false);

/// A `'static` lifetime token is not a static item.
static BANNER: &'static str = "rocket";

/// Acquire loads may gate control flow.
pub fn serve(jobs: &[u64]) -> u64 {
    if READY.load(Ordering::Acquire) {
        jobs.iter().sum()
    } else {
        0
    }
}

/// A Relaxed load that only feeds a metric (no branch) is fine.
pub fn sample() -> u64 {
    let seen = HITS.load(Ordering::Relaxed);
    seen.saturating_mul(2)
}

/// Arc::make_mut clones on sharing instead of failing.
pub fn tweak(shared: &mut Arc<Vec<u64>>) {
    Arc::make_mut(shared).reverse();
}
