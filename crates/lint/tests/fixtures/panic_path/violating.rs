//! Fixture: one finding per panic-path pattern (RL-P001..RL-P003).
//! Never compiled — scanned by rocket-lint's fixture tests.

pub fn take_first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn must(o: Option<u32>) -> u32 {
    o.expect("value required")
}

pub fn route(kind: u8) -> &'static str {
    match kind {
        0 => "job",
        1 => "ping",
        _ => unreachable!("unknown message kind"),
    }
}

pub fn header_byte(frame: &[u8]) -> u8 {
    frame[0]
}
