//! Fixture: fault-tolerant forms and near-misses that the panic-path
//! rules must NOT flag. Never compiled — scanned by rocket-lint's
//! fixture tests.

pub fn take_first(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub fn must(o: Option<u32>) -> u32 {
    o.unwrap_or_default()
}

/// Poisoning recovery is not an abort.
pub fn guarded(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|e| e.into_inner())
}

pub fn header_byte(frame: &[u8]) -> Option<u8> {
    frame.get(0).copied()
}

/// Array types, literals, slice patterns, macros, and attributes all use
/// brackets without indexing.
#[derive(Clone)]
pub struct Frame {
    pub header: [u8; 4],
}

pub fn build() -> Vec<u8> {
    let buf = vec![0u8; 16];
    let [a, b] = [1u8, 2u8];
    for x in [a, b] {
        let _ = x;
    }
    buf
}

/// Construction-time invariant checks are allowed.
pub fn new_limiter(limit: usize) {
    assert!(limit >= 1, "limit must be positive");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_panic() {
        let v = vec![1u32];
        assert_eq!(v[0], 1);
        v.first().unwrap();
        if false {
            panic!("test-only");
        }
    }
}
