//! Clean fixture for the hot-path family: the hot root reuses caller
//! buffers; allocation happens only in cold setup code the root never
//! reaches.

pub fn handle(ev: u64, scratch: &mut [u64], out: &mut Vec<u64>) {
    scratch[0] = ev;
    if let Some(slot) = out.last_mut() {
        *slot = scratch[0];
    }
    record(ev);
}

fn record(_ev: u64) {}

/// Cold: runs once at startup, never called from `handle`.
pub fn preallocate(capacity: usize) -> Vec<u64> {
    let mut buffers = Vec::with_capacity(capacity);
    buffers.resize(capacity, 0);
    buffers
}
