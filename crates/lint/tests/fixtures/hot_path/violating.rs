//! Violating fixture for the hot-path family (RL-A001/RL-A002). The
//! configured root is `handle`; `format_key` is hot only transitively.

pub fn handle(ev: u64, out: &mut Vec<u64>) {
    // RL-A001: fresh Vec per event.
    let mut scratch = Vec::new();
    scratch.push(ev);
    // RL-A001: per-event clone of the scratch buffer.
    let copy = scratch.clone();
    out.extend_from_slice(&copy);
    record(format_key(ev));
}

/// RL-A002: allocation one call below the root (handle -> format_key).
fn format_key(ev: u64) -> String {
    format!("ev-{ev}")
}

fn record(_key: String) {}
