//! Witness-fixture source: one static lock-order edge, `intake` ->
//! `ledger`, derived from `settle` holding `intake` while taking
//! `ledger`. The sibling JSON files model different runtime witnesses of
//! this same code (see fixtures_test.rs for what each one proves).

use parking_lot::Mutex;

pub struct Bank {
    intake: Mutex<Vec<u64>>,
    ledger: Mutex<u64>,
}

impl Bank {
    /// Nests `ledger` under `intake`: the static edge.
    pub fn settle(&self) {
        let mut pending = self.intake.lock();
        let mut total = self.ledger.lock();
        *total += pending.drain(..).sum::<u64>();
    }

    /// Touches each lock alone — no edge.
    pub fn audit(&self) -> u64 {
        let pending = self.intake.lock().len() as u64;
        pending + *self.ledger.lock()
    }
}
