//! Violating fixture for the blocking family (RL-B001/RL-B002).
//!
//! This file is the acceptance proof that "adding a blocking call under
//! a held lock" flips the lint to failure: every finding here is
//! unsuppressed, so a `rocket-lint` run over this tree exits 1. Moving
//! the blocking calls out of the critical sections (see clean.rs)
//! restores exit 0.

use parking_lot::Mutex;

pub struct Hub {
    state: Mutex<u64>,
}

impl Hub {
    /// RL-B001: channel recv while `state` is held.
    pub fn drain(&self, rx: &Receiver<u64>) {
        let mut st = self.state.lock();
        let v = rx.recv().unwrap();
        *st += v;
    }

    /// RL-B001: pacing sleep inside the critical section.
    pub fn throttle(&self) {
        let st = self.state.lock();
        clock::pace(*st);
    }

    /// RL-B002: the blocking file IO hides one call away.
    pub fn persist(&self) {
        let st = self.state.lock();
        write_snapshot(*st);
    }
}

fn write_snapshot(v: u64) {
    let _ = std::fs::write("snapshot.bin", v.to_le_bytes());
}
