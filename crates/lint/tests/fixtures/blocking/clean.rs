//! Clean fixture for the blocking family: near-misses that must stay
//! silent. Each function blocks or locks — never both at once.

use parking_lot::Mutex;

pub struct Hub {
    state: Mutex<u64>,
}

impl Hub {
    /// Blocking first, lock second: the recv completes before the
    /// critical section opens.
    pub fn drain(&self, rx: &Receiver<u64>) {
        let v = rx.recv().unwrap();
        let mut st = self.state.lock();
        *st += v;
    }

    /// A statement temporary releases at the semicolon, so the pace
    /// afterwards runs unlocked.
    pub fn bump_then_wait(&self) {
        self.state.lock().checked_add(1);
        clock::pace(50);
    }

    /// A brace scope bounds the guard; the file IO runs after the
    /// closing brace.
    pub fn persist(&self) {
        let v = {
            let st = self.state.lock();
            *st
        };
        write_snapshot(v);
    }
}

/// Blocking with no lock anywhere in scope is fine.
pub fn flush_log(rx: &Receiver<u64>) {
    while let Ok(v) = rx.recv_timeout(TICK) {
        let _ = std::fs::write("log.bin", v.to_le_bytes());
    }
}

fn write_snapshot(v: u64) {
    let _ = std::fs::write("snapshot.bin", v.to_le_bytes());
}
