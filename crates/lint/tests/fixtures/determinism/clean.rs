//! Fixture: near-misses that the determinism rules must NOT flag.
//! Never compiled — scanned by rocket-lint's fixture tests.

use rocket_cache::{FxHashMap, FxHashSet};

pub fn build_index(keys: &[u32]) -> FxHashMap<u32, usize> {
    let mut index = FxHashMap::default();
    for (i, k) in keys.iter().enumerate() {
        index.insert(*k, i);
    }
    index
}

pub fn dedup(keys: &[u32]) -> FxHashSet<u32> {
    keys.iter().copied().collect()
}

/// Storing or passing an `Instant` handed in from a sanctioned source is
/// fine; only the `::now()` read is a wall-clock dependency.
pub fn hold(deadline: std::time::Instant) -> std::time::Instant {
    deadline
}

/// Seeded RNG is the sanctioned form.
pub fn scramble(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.next_u64()
}

pub fn excused() -> std::time::Instant {
    // lint:allow(determinism) — fixture for the suppression path: a
    // deliberate wall-clock read with a recorded rationale.
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_use_host_timing() {
        let t = std::time::Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let mut m = HashMap::new();
        m.insert(1, t);
    }
}
