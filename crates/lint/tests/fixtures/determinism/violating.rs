//! Fixture: one finding per determinism code (RL-D001..RL-D004).
//! Never compiled — scanned by rocket-lint's fixture tests.

pub fn build_index(keys: &[u32]) -> Vec<(u32, usize)> {
    let mut index = std::collections::HashMap::new();
    for (i, k) in keys.iter().enumerate() {
        index.insert(*k, i);
    }
    index.into_iter().collect()
}

pub fn elapsed_secs() -> f64 {
    let start = std::time::Instant::now();
    start.elapsed().as_secs_f64()
}

pub fn idle_pause() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn scramble() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}
