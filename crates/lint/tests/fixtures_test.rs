//! Fixture corpus: each rule family is proven by a violating fixture
//! (checked against golden JSON diagnostics) and a clean fixture full of
//! near-misses that must stay silent.
//!
//! Regenerate goldens with `UPDATE_GOLDEN=1 cargo test -p rocket-lint`.

use std::path::{Path, PathBuf};

use rocket_lint::config::{HotPathConfig, LintConfig, RuleScope, WireDriftConfig};
use rocket_lint::diag::{render_json, Diagnostic};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn unsuppressed(diags: &[Diagnostic]) -> usize {
    diags.iter().filter(|d| !d.suppressed).count()
}

fn check_golden(name: &str, diags: &[Diagnostic]) {
    let actual = render_json(diags);
    let path = fixtures().join("golden").join(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run UPDATE_GOLDEN=1"));
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "golden mismatch for {name}; run UPDATE_GOLDEN=1 cargo test -p rocket-lint to refresh"
    );
}

fn scope(paths: &[&str]) -> RuleScope {
    RuleScope {
        paths: paths.iter().map(|p| p.to_string()).collect(),
        allow_files: Vec::new(),
    }
}

#[test]
fn determinism_violating_matches_golden() {
    let cfg = LintConfig {
        determinism: scope(&["violating.rs"]),
        ..Default::default()
    };
    let diags = rocket_lint::run(&fixtures().join("determinism"), &cfg).unwrap();
    assert_eq!(unsuppressed(&diags), 4, "{diags:?}");
    let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["RL-D001", "RL-D002", "RL-D003", "RL-D004"]);
    check_golden("determinism.json", &diags);
}

#[test]
fn determinism_clean_is_silent() {
    let cfg = LintConfig {
        determinism: scope(&["clean.rs"]),
        ..Default::default()
    };
    let diags = rocket_lint::run(&fixtures().join("determinism"), &cfg).unwrap();
    // The clean fixture carries one deliberately suppressed finding to
    // exercise the lint:allow path end to end.
    assert_eq!(unsuppressed(&diags), 0, "{diags:?}");
    assert_eq!(diags.len(), 1);
    assert!(diags[0].suppressed);
}

#[test]
fn panic_path_violating_matches_golden() {
    let cfg = LintConfig {
        panic_path: scope(&["violating.rs"]),
        ..Default::default()
    };
    let diags = rocket_lint::run(&fixtures().join("panic_path"), &cfg).unwrap();
    assert_eq!(unsuppressed(&diags), 4, "{diags:?}");
    let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["RL-P001", "RL-P001", "RL-P002", "RL-P003"]);
    check_golden("panic_path.json", &diags);
}

#[test]
fn panic_path_clean_is_silent() {
    let cfg = LintConfig {
        panic_path: scope(&["clean.rs"]),
        ..Default::default()
    };
    let diags = rocket_lint::run(&fixtures().join("panic_path"), &cfg).unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn lock_order_inversion_matches_golden() {
    let cfg = LintConfig {
        lock_order: scope(&["violating.rs"]),
        ..Default::default()
    };
    let diags = rocket_lint::run(&fixtures().join("lock_order"), &cfg).unwrap();
    assert_eq!(unsuppressed(&diags), 1, "{diags:?}");
    assert_eq!(diags[0].code, "RL-L001");
    assert!(diags[0].message.contains("jobs"));
    assert!(diags[0].message.contains("stats"));
    check_golden("lock_order.json", &diags);
}

#[test]
fn lock_order_clean_is_silent() {
    let cfg = LintConfig {
        lock_order: scope(&["clean.rs"]),
        ..Default::default()
    };
    let diags = rocket_lint::run(&fixtures().join("lock_order"), &cfg).unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

fn wire_cfg(fingerprint: &str) -> LintConfig {
    LintConfig {
        wire_drift: WireDriftConfig {
            struct_paths: vec!["model.rs".into()],
            structs: vec!["JobSpec".into(), "JobResult".into()],
            codec: "codec.rs".into(),
            protocol: "protocol.rs".into(),
            protocol_version: 1,
            protocol_fingerprint: fingerprint.into(),
        },
        ..Default::default()
    }
}

#[test]
fn wire_drift_clean_is_silent() {
    let root = fixtures().join("wire_drift/clean");
    // Record the clean tree's own fingerprint, as lint.toml would.
    let (fp, version) = rocket_lint::protocol_identity(&root, &wire_cfg("")).unwrap();
    assert_eq!(version, Some(1));
    let diags = rocket_lint::run(&root, &wire_cfg(&fp)).unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn wire_drift_drifted_matches_golden() {
    let clean = fixtures().join("wire_drift/clean");
    let (clean_fp, _) = rocket_lint::protocol_identity(&clean, &wire_cfg("")).unwrap();
    // Lint the drifted tree against the fingerprint recorded when the
    // protocol was last blessed (i.e. the clean tree's).
    let root = fixtures().join("wire_drift/drifted");
    let diags = rocket_lint::run(&root, &wire_cfg(&clean_fp)).unwrap();
    let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
    // JobSpec::priority missing from both codec directions, plus the
    // unbumped protocol edit.
    assert_eq!(codes, ["RL-W001", "RL-W001", "RL-W002"], "{diags:?}");
    check_golden("wire_drift.json", &diags);
}

#[test]
fn wire_drift_bumped_version_asks_for_rerecord() {
    let clean = fixtures().join("wire_drift/clean");
    let (clean_fp, _) = rocket_lint::protocol_identity(&clean, &wire_cfg("")).unwrap();
    let root = fixtures().join("wire_drift/drifted");
    // Same drifted tree, but pretend the recorded version predates a
    // bump: fingerprint differs AND the file's version (1) differs from
    // the recorded one (0) — the instructive RL-W003 path.
    let mut cfg = wire_cfg(&clean_fp);
    cfg.wire_drift.protocol_version = 0;
    let diags = rocket_lint::run(&root, &cfg).unwrap();
    assert!(
        diags
            .iter()
            .any(|d| d.code == "RL-W003" && d.message.contains("re-record")),
        "{diags:?}"
    );
}

#[test]
fn blocking_violating_matches_golden() {
    // Acceptance proof: a blocking call under a held lock is an
    // unsuppressed finding, which the CLI maps to exit code 1. Hoisting
    // the blocking calls out of the critical sections (clean.rs) maps
    // back to exit 0.
    let cfg = LintConfig {
        blocking: scope(&["violating.rs"]),
        ..Default::default()
    };
    let diags = rocket_lint::run(&fixtures().join("blocking"), &cfg).unwrap();
    assert!(unsuppressed(&diags) > 0, "must flip the exit code");
    let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["RL-B001", "RL-B001", "RL-B002"], "{diags:?}");
    check_golden("blocking.json", &diags);
}

#[test]
fn blocking_clean_is_silent() {
    let cfg = LintConfig {
        blocking: scope(&["clean.rs"]),
        ..Default::default()
    };
    let diags = rocket_lint::run(&fixtures().join("blocking"), &cfg).unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn shared_state_violating_matches_golden() {
    let cfg = LintConfig {
        shared_state: scope(&["violating.rs"]),
        ..Default::default()
    };
    let diags = rocket_lint::run(&fixtures().join("shared_state"), &cfg).unwrap();
    let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
    assert_eq!(
        codes,
        ["RL-S001", "RL-S002", "RL-S003", "RL-S004"],
        "{diags:?}"
    );
    check_golden("shared_state.json", &diags);
}

#[test]
fn shared_state_clean_is_silent() {
    let cfg = LintConfig {
        shared_state: scope(&["clean.rs"]),
        ..Default::default()
    };
    let diags = rocket_lint::run(&fixtures().join("shared_state"), &cfg).unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

fn hot_cfg(file: &str, roots: &[&str]) -> LintConfig {
    LintConfig {
        hot_path: HotPathConfig {
            paths: vec![file.into()],
            allow_files: Vec::new(),
            hot_fns: roots.iter().map(|r| r.to_string()).collect(),
        },
        ..Default::default()
    }
}

#[test]
fn hot_path_violating_matches_golden() {
    let cfg = hot_cfg("violating.rs", &["handle"]);
    let diags = rocket_lint::run(&fixtures().join("hot_path"), &cfg).unwrap();
    let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["RL-A001", "RL-A001", "RL-A002"], "{diags:?}");
    check_golden("hot_path.json", &diags);
}

#[test]
fn hot_path_clean_is_silent() {
    // `preallocate` allocates freely: it is not reachable from the root.
    let cfg = hot_cfg("clean.rs", &["handle"]);
    let diags = rocket_lint::run(&fixtures().join("hot_path"), &cfg).unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn hot_path_unknown_root_is_config_error() {
    let cfg = hot_cfg("clean.rs", &["no_such_fn"]);
    let err = rocket_lint::run(&fixtures().join("hot_path"), &cfg).unwrap_err();
    assert!(err.contains("no_such_fn"), "{err}");
}

fn witness_cfg() -> LintConfig {
    LintConfig {
        lock_order: scope(&["src.rs"]),
        ..Default::default()
    }
}

fn cross_check(witness_file: &str) -> Result<Vec<Diagnostic>, String> {
    let root = fixtures().join("witness");
    rocket_lint::cross_check_witness(&root, &witness_cfg(), &root.join(witness_file))
}

#[test]
fn witness_matching_runtime_is_silent() {
    // The runtime saw exactly the edge the static model derives.
    let diags = cross_check("witnessed.json").unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn witness_stale_flags_unwitnessed_static_edge() {
    // Acceptance proof for "deleting a lock() from an instrumented guard
    // path flips the exit code": stale.json models a runtime where both
    // locks were still acquired somewhere, but the nested acquisition in
    // `settle` is gone — RL-X001, unsuppressed, exit 1.
    let diags = cross_check("stale.json").unwrap();
    assert!(unsuppressed(&diags) > 0, "must flip the exit code");
    let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["RL-X001"], "{diags:?}");
    assert!(diags[0].message.contains("`intake` -> `ledger`"));
    check_golden("witness_stale.json", &diags);
}

#[test]
fn witness_gap_flags_underived_runtime_edge() {
    // The runtime nested `journal` under `ledger`; the static model has
    // no such edge — an analysis gap or a drifted Mutex::named label.
    let diags = cross_check("gap.json").unwrap();
    let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["RL-X002"], "{diags:?}");
    assert!(diags[0].message.contains("`ledger` -> `journal`"));
    check_golden("witness_gap.json", &diags);
}

#[test]
fn witness_partial_coverage_stays_silent() {
    // Only `intake` was ever acquired at runtime: the static edge's far
    // endpoint was never witnessed, so its absence is not disagreement.
    let diags = cross_check("partial.json").unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn witness_unsupported_schema_is_an_error() {
    let err = cross_check("bad_schema.json").unwrap_err();
    assert!(err.contains("unsupported witness schema"), "{err}");
}
