//! Fixture corpus: each rule family is proven by a violating fixture
//! (checked against golden JSON diagnostics) and a clean fixture full of
//! near-misses that must stay silent.
//!
//! Regenerate goldens with `UPDATE_GOLDEN=1 cargo test -p rocket-lint`.

use std::path::{Path, PathBuf};

use rocket_lint::config::{LintConfig, RuleScope, WireDriftConfig};
use rocket_lint::diag::{render_json, Diagnostic};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn unsuppressed(diags: &[Diagnostic]) -> usize {
    diags.iter().filter(|d| !d.suppressed).count()
}

fn check_golden(name: &str, diags: &[Diagnostic]) {
    let actual = render_json(diags);
    let path = fixtures().join("golden").join(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run UPDATE_GOLDEN=1"));
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "golden mismatch for {name}; run UPDATE_GOLDEN=1 cargo test -p rocket-lint to refresh"
    );
}

fn scope(paths: &[&str]) -> RuleScope {
    RuleScope {
        paths: paths.iter().map(|p| p.to_string()).collect(),
        allow_files: Vec::new(),
    }
}

#[test]
fn determinism_violating_matches_golden() {
    let cfg = LintConfig {
        determinism: scope(&["violating.rs"]),
        ..Default::default()
    };
    let diags = rocket_lint::run(&fixtures().join("determinism"), &cfg).unwrap();
    assert_eq!(unsuppressed(&diags), 4, "{diags:?}");
    let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["RL-D001", "RL-D002", "RL-D003", "RL-D004"]);
    check_golden("determinism.json", &diags);
}

#[test]
fn determinism_clean_is_silent() {
    let cfg = LintConfig {
        determinism: scope(&["clean.rs"]),
        ..Default::default()
    };
    let diags = rocket_lint::run(&fixtures().join("determinism"), &cfg).unwrap();
    // The clean fixture carries one deliberately suppressed finding to
    // exercise the lint:allow path end to end.
    assert_eq!(unsuppressed(&diags), 0, "{diags:?}");
    assert_eq!(diags.len(), 1);
    assert!(diags[0].suppressed);
}

#[test]
fn panic_path_violating_matches_golden() {
    let cfg = LintConfig {
        panic_path: scope(&["violating.rs"]),
        ..Default::default()
    };
    let diags = rocket_lint::run(&fixtures().join("panic_path"), &cfg).unwrap();
    assert_eq!(unsuppressed(&diags), 4, "{diags:?}");
    let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["RL-P001", "RL-P001", "RL-P002", "RL-P003"]);
    check_golden("panic_path.json", &diags);
}

#[test]
fn panic_path_clean_is_silent() {
    let cfg = LintConfig {
        panic_path: scope(&["clean.rs"]),
        ..Default::default()
    };
    let diags = rocket_lint::run(&fixtures().join("panic_path"), &cfg).unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn lock_order_inversion_matches_golden() {
    let cfg = LintConfig {
        lock_order: scope(&["violating.rs"]),
        ..Default::default()
    };
    let diags = rocket_lint::run(&fixtures().join("lock_order"), &cfg).unwrap();
    assert_eq!(unsuppressed(&diags), 1, "{diags:?}");
    assert_eq!(diags[0].code, "RL-L001");
    assert!(diags[0].message.contains("jobs"));
    assert!(diags[0].message.contains("stats"));
    check_golden("lock_order.json", &diags);
}

#[test]
fn lock_order_clean_is_silent() {
    let cfg = LintConfig {
        lock_order: scope(&["clean.rs"]),
        ..Default::default()
    };
    let diags = rocket_lint::run(&fixtures().join("lock_order"), &cfg).unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

fn wire_cfg(fingerprint: &str) -> LintConfig {
    LintConfig {
        wire_drift: WireDriftConfig {
            struct_paths: vec!["model.rs".into()],
            structs: vec!["JobSpec".into(), "JobResult".into()],
            codec: "codec.rs".into(),
            protocol: "protocol.rs".into(),
            protocol_version: 1,
            protocol_fingerprint: fingerprint.into(),
        },
        ..Default::default()
    }
}

#[test]
fn wire_drift_clean_is_silent() {
    let root = fixtures().join("wire_drift/clean");
    // Record the clean tree's own fingerprint, as lint.toml would.
    let (fp, version) = rocket_lint::protocol_identity(&root, &wire_cfg("")).unwrap();
    assert_eq!(version, Some(1));
    let diags = rocket_lint::run(&root, &wire_cfg(&fp)).unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn wire_drift_drifted_matches_golden() {
    let clean = fixtures().join("wire_drift/clean");
    let (clean_fp, _) = rocket_lint::protocol_identity(&clean, &wire_cfg("")).unwrap();
    // Lint the drifted tree against the fingerprint recorded when the
    // protocol was last blessed (i.e. the clean tree's).
    let root = fixtures().join("wire_drift/drifted");
    let diags = rocket_lint::run(&root, &wire_cfg(&clean_fp)).unwrap();
    let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
    // JobSpec::priority missing from both codec directions, plus the
    // unbumped protocol edit.
    assert_eq!(codes, ["RL-W001", "RL-W001", "RL-W002"], "{diags:?}");
    check_golden("wire_drift.json", &diags);
}

#[test]
fn wire_drift_bumped_version_asks_for_rerecord() {
    let clean = fixtures().join("wire_drift/clean");
    let (clean_fp, _) = rocket_lint::protocol_identity(&clean, &wire_cfg("")).unwrap();
    let root = fixtures().join("wire_drift/drifted");
    // Same drifted tree, but pretend the recorded version predates a
    // bump: fingerprint differs AND the file's version (1) differs from
    // the recorded one (0) — the instructive RL-W003 path.
    let mut cfg = wire_cfg(&clean_fp);
    cfg.wire_drift.protocol_version = 0;
    let diags = rocket_lint::run(&root, &cfg).unwrap();
    assert!(
        diags
            .iter()
            .any(|d| d.code == "RL-W003" && d.message.contains("re-record")),
        "{diags:?}"
    );
}
