//! The live workspace must lint clean: every rule family runs over the
//! real sources with the checked-in `lint.toml`, and every finding must
//! carry an explicit `lint:allow` rationale. A new unsuppressed finding
//! fails this test (and the CI gate) until fixed or excused.

use std::path::Path;

#[test]
fn workspace_has_no_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = root.join("lint.toml");
    let diags = rocket_lint::run_with_config_file(&root, &config)
        .expect("lint run must succeed on the workspace");
    let dirty: Vec<_> = diags.iter().filter(|d| !d.suppressed).collect();
    assert!(
        dirty.is_empty(),
        "unsuppressed lint findings in the workspace:\n{}",
        dirty
            .iter()
            .map(|d| rocket_lint::diag::render_human(d))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_suppressions_are_the_known_set() {
    // The exception inventory is deliberate and small; growing it should
    // be a conscious act (update this list alongside the rationale
    // comment).
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = root.join("lint.toml");
    let diags = rocket_lint::run_with_config_file(&root, &config).unwrap();
    let suppressed: Vec<String> = diags
        .iter()
        .filter(|d| d.suppressed)
        .map(|d| format!("{}:{}", d.code, d.path))
        .collect();
    assert_eq!(
        suppressed,
        [
            // TcpStream::shutdown in Drop aliases the resource executor's
            // thread-joining `shutdown` by name; the real call is a
            // non-blocking teardown syscall.
            "RL-B002:crates/comm/src/socket.rs",
            // A shard's cell lock is private to its owning worker for the
            // window; modeled IO inside run_window blocks nobody else.
            "RL-B002:crates/sim/src/shard.rs",
            // The job limiter's condvar waits release `available`
            // atomically — blocking here is the semaphore's purpose.
            "RL-B001:crates/steal/src/limiter.rs",
            // Wall-clock deadline for acquire_timeout back-pressure.
            "RL-D002:crates/steal/src/limiter.rs",
            // Second condvar wait (the bounded acquire_timeout loop).
            "RL-B001:crates/steal/src/limiter.rs",
            // Monotonic progress counter: a stale Relaxed read delays the
            // exit check one iteration, never un-finishes the pool.
            "RL-S003:crates/steal/src/pool.rs",
            // Host-timed sleep in the steal backoff (paced, not timed).
            "RL-D003:crates/steal/src/pool.rs",
        ],
        "suppression inventory changed — update this test with the new rationale"
    );
}
