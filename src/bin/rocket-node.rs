//! `rocket-node` — one OS process of a socket-connected Rocket cluster.
//!
//! Skeleton of the multi-process deployment path: every process joins the
//! same mesh the in-process socket cluster uses (`SocketTransport::join`
//! behind the `Transport` trait), so turning the threaded runtime into a
//! true multi-process backend is wiring, not a rewrite. Today the binary
//! establishes the full mesh — listener, rank handshakes, per-peer
//! ordered connections — then runs an all-to-all ping round as a health
//! check and reports the traffic counters.
//!
//! ```text
//! rocket-node --rank R --peers HOST:PORT,HOST:PORT,...   # addrs[R] is ours
//! ```
//!
//! Example, three processes on one machine:
//!
//! ```text
//! rocket-node --rank 0 --peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702 &
//! rocket-node --rank 1 --peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702 &
//! rocket-node --rank 2 --peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702
//! ```

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use rocket::comm::{SocketTransport, Transport};

fn usage() -> ExitCode {
    eprintln!("usage: rocket-node --rank R --peers HOST:PORT,HOST:PORT,...");
    eprintln!("(the address at index R of --peers is this process's listen address)");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut rank: Option<usize> = None;
    let mut peers: Vec<SocketAddr> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rank" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => rank = Some(v),
                None => return usage(),
            },
            "--peers" => match args.next() {
                Some(list) => {
                    for part in list.split(',') {
                        match part.trim().parse() {
                            Ok(addr) => peers.push(addr),
                            Err(e) => {
                                eprintln!("bad peer address '{part}': {e}");
                                return usage();
                            }
                        }
                    }
                }
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    let Some(rank) = rank else { return usage() };
    if peers.len() < 2 || rank >= peers.len() {
        eprintln!("need at least two peer addresses and rank < peer count");
        return usage();
    }

    eprintln!(
        "[rank {rank}] joining a {}-node mesh on {}",
        peers.len(),
        peers[rank]
    );
    let transport = match SocketTransport::join(rank, &peers) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[rank {rank}] mesh establishment failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("[rank {rank}] mesh up: {} peers connected", peers.len() - 1);

    // Health check: one ping to every peer, one expected from each.
    for peer in 0..transport.cluster_size() {
        if peer != rank
            && transport
                .send(peer, bytes::Bytes::from(vec![rank as u8]))
                .is_err()
        {
            eprintln!("[rank {rank}] peer {peer} hung up before the ping round");
            return ExitCode::FAILURE;
        }
    }
    let mut seen = vec![false; transport.cluster_size()];
    for _ in 0..transport.cluster_size() - 1 {
        match transport.recv_timeout(Duration::from_secs(30)) {
            Ok(msg) => {
                if msg.payload.as_ref() != [msg.from as u8] {
                    eprintln!("[rank {rank}] corrupt ping from {}", msg.from);
                    return ExitCode::FAILURE;
                }
                seen[msg.from] = true;
            }
            Err(e) => {
                eprintln!("[rank {rank}] ping round failed: {e:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let heard: Vec<usize> = (0..seen.len()).filter(|&n| seen[n]).collect();
    let stats = transport.stats().snapshot();
    println!(
        "[rank {rank}] ok: heard from {heard:?}; sent {} msgs / {} B, received {} msgs / {} B",
        stats.msgs_sent, stats.bytes_sent, stats.msgs_recv, stats.bytes_recv
    );
    // A real worker would now enter the node engine's conductor loop; the
    // transport handle it needs is exactly the one this skeleton holds.
    ExitCode::SUCCESS
}
