//! `rocket-node` — one OS process of a socket-connected Rocket cluster.
//!
//! Every process joins the same mesh the in-process socket cluster uses
//! (`SocketTransport::join` behind the `Transport` trait). Two modes:
//!
//! * **Health check** (default) — establish the full mesh — listener,
//!   rank handshakes, per-peer ordered connections — run an all-to-all
//!   ping round, report the traffic counters, exit.
//! * **Worker** (`--serve`) — enter the cluster worker loop
//!   (`rocket::cluster::serve`) and execute scenario jobs shipped by the
//!   driver at rank 0 (any program owning a `ClusterBackend`, e.g. a
//!   study runner calling `ClusterBackend::join`) until shut down.
//!
//! ```text
//! rocket-node --rank R --peers HOST:PORT,HOST:PORT,... [--serve]
//! ```
//!
//! Example, a driver plus two worker processes on one machine:
//!
//! ```text
//! rocket-node --rank 1 --peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702 --serve &
//! rocket-node --rank 2 --peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702 --serve &
//! my-study-driver   # rank 0: ClusterBackend::join(addrs), Study::run(...)
//! ```

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use rocket::cluster::{serve, DRIVER_RANK};
use rocket::comm::{SocketTransport, Transport};
use rocket::sim::SimBackend;

fn usage() -> ExitCode {
    eprintln!("usage: rocket-node --rank R --peers HOST:PORT,HOST:PORT,... [--serve]");
    eprintln!("(the address at index R of --peers is this process's listen address;");
    eprintln!(" --serve runs the cluster worker loop instead of the ping health check)");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut rank: Option<usize> = None;
    let mut peers: Vec<SocketAddr> = Vec::new();
    let mut serve_mode = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--serve" => serve_mode = true,
            "--rank" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => rank = Some(v),
                None => return usage(),
            },
            "--peers" => match args.next() {
                Some(list) => {
                    for part in list.split(',') {
                        match part.trim().parse() {
                            Ok(addr) => peers.push(addr),
                            Err(e) => {
                                eprintln!("bad peer address '{part}': {e}");
                                return usage();
                            }
                        }
                    }
                }
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    let Some(rank) = rank else { return usage() };
    if peers.len() < 2 || rank >= peers.len() {
        eprintln!("need at least two peer addresses and rank < peer count");
        return usage();
    }
    if serve_mode && rank == DRIVER_RANK {
        eprintln!("rank {DRIVER_RANK} is the driver; workers serve from ranks 1..");
        return usage();
    }

    eprintln!(
        "[rank {rank}] joining a {}-node mesh on {}",
        peers.len(),
        peers[rank]
    );
    let transport = match SocketTransport::join(rank, &peers) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[rank {rank}] mesh establishment failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("[rank {rank}] mesh up: {} peers connected", peers.len() - 1);

    if serve_mode {
        eprintln!("[rank {rank}] serving jobs on the sim backend");
        let report = serve(&transport, &SimBackend::new());
        eprintln!(
            "[rank {rank}] served {} job(s), answered {} ping(s), {}",
            report.jobs,
            report.pings,
            if report.clean_exit {
                "shut down by the driver"
            } else {
                "driver connection lost"
            }
        );
        // Either way the worker did its job; losing the driver is not a
        // worker-side failure.
        return ExitCode::SUCCESS;
    }

    // Health check: one ping to every peer, one expected from each.
    for peer in 0..transport.cluster_size() {
        if peer != rank
            && transport
                .send(peer, bytes::Bytes::from(vec![rank as u8]))
                .is_err()
        {
            eprintln!("[rank {rank}] peer {peer} hung up before the ping round");
            return ExitCode::FAILURE;
        }
    }
    let mut seen = vec![false; transport.cluster_size()];
    for _ in 0..transport.cluster_size() - 1 {
        match transport.recv_timeout(Duration::from_secs(30)) {
            Ok(msg) => {
                if msg.payload.as_ref() != [msg.from as u8] {
                    eprintln!("[rank {rank}] corrupt ping from {}", msg.from);
                    return ExitCode::FAILURE;
                }
                seen[msg.from] = true;
            }
            Err(e) => {
                eprintln!("[rank {rank}] ping round failed: {e:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let heard: Vec<usize> = (0..seen.len()).filter(|&n| seen[n]).collect();
    let stats = transport.stats().snapshot();
    println!(
        "[rank {rank}] ok: heard from {heard:?}; sent {} msgs / {} B, received {} msgs / {} B",
        stats.msgs_sent, stats.bytes_sent, stats.msgs_recv, stats.bytes_recv
    );
    // A real worker would now enter the node engine's conductor loop; the
    // transport handle it needs is exactly the one this skeleton holds.
    ExitCode::SUCCESS
}
