//! CLI for the offline workspace analyzer (`crates/lint`).
//!
//! ```text
//! rocket-lint [--root DIR] [--config PATH] [--json] [--json-out FILE]
//!             [--witness PATH] [--list-rules] [--print-protocol]
//! ```
//!
//! Exit status: 0 clean (suppressed findings allowed), 1 unsuppressed
//! diagnostics, 2 configuration or I/O error — so CI can distinguish
//! "code is dirty" from "the linter itself broke".

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use rocket_lint::config::LintConfig;
use rocket_lint::diag::{render_human, render_json};

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    json_out: Option<PathBuf>,
    list_rules: bool,
    print_protocol: bool,
    witness: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: false,
        json_out: None,
        list_rules: false,
        print_protocol: false,
        witness: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?),
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a path")?))
            }
            "--json" => args.json = true,
            "--json-out" => {
                args.json_out = Some(PathBuf::from(it.next().ok_or("--json-out needs a path")?))
            }
            "--witness" => {
                args.witness = Some(PathBuf::from(it.next().ok_or("--witness needs a path")?))
            }
            "--list-rules" => args.list_rules = true,
            "--print-protocol" => args.print_protocol = true,
            "--help" | "-h" => {
                out("rocket-lint: offline workspace analyzer\n\
                     \n\
                     Options:\n\
                       --root DIR        workspace root (default: .)\n\
                       --config PATH     lint.toml (default: <root>/lint.toml)\n\
                       --json            print the JSON report to stdout\n\
                       --json-out FILE   also write the JSON report to FILE\n\
                       --witness PATH    cross-check the static lock-order model against\n\
                                         a sanitize-run witness JSON (file, or directory\n\
                                         of witness-*.json merged)\n\
                       --list-rules      print the rule catalog and exit\n\
                       --print-protocol  print the protocol fingerprint/version and exit");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// Prints to stdout, ignoring broken pipes (`rocket-lint | head` must
/// not panic — this tool polices panic-free fault paths, after all).
fn out(s: &str) {
    let _ = writeln!(std::io::stdout(), "{s}");
}

const RULE_CATALOG: &str = "\
RL-D001  determinism  std HashMap/HashSet (randomized iteration order)
RL-D002  determinism  wall-clock read (Instant::now / SystemTime)
RL-D003  determinism  host-timed thread::sleep
RL-D004  determinism  unseeded RNG entry point
RL-P001  panic-path   unwrap()/expect() on a fault path
RL-P002  panic-path   panic!/unreachable!/todo!/unimplemented! on a fault path
RL-P003  panic-path   slice indexing on a fault path
RL-L001  lock-order   lock-acquisition cycle
RL-X001  lock-order   static lock edge never witnessed at runtime (--witness)
RL-X002  lock-order   witnessed lock edge missing from the static model (--witness)
RL-W001  wire-drift   struct field not covered by the Wire codec
RL-W002  wire-drift   protocol changed without a PROTOCOL_VERSION bump
RL-W003  wire-drift   protocol fingerprint needs re-recording in lint.toml
RL-B001  blocking     blocking op (recv/join/wait/IO/sleep) while a lock is held
RL-B002  blocking     call that may transitively block while a lock is held
RL-S001  shared-state static mut item
RL-S002  shared-state non-Sync static (Cell/RefCell/Rc/raw pointer)
RL-S003  shared-state Relaxed atomic load gating control flow
RL-S004  shared-state Arc::get_mut mutation outside a lock
RL-A001  hot-path     heap allocation in a designated hot function
RL-A002  hot-path     heap allocation reachable from a hot function";

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if args.list_rules {
        out(RULE_CATALOG);
        return Ok(ExitCode::SUCCESS);
    }
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lint.toml"));
    let cfg_src = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("read {}: {e}", config_path.display()))?;
    let cfg = LintConfig::parse(&cfg_src)?;

    if args.print_protocol {
        let (fp, version) = rocket_lint::protocol_identity(&args.root, &cfg)?;
        match version {
            Some(v) => out(&format!(
                "protocol_version = {v}\nprotocol_fingerprint = \"{fp}\""
            )),
            None => out(&format!(
                "protocol_fingerprint = \"{fp}\"  # no PROTOCOL_VERSION found"
            )),
        }
        return Ok(ExitCode::SUCCESS);
    }

    let mut diags = rocket_lint::run(&args.root, &cfg)?;
    if let Some(witness) = &args.witness {
        diags.extend(rocket_lint::cross_check_witness(&args.root, &cfg, witness)?);
        rocket_lint::diag::sort(&mut diags);
    }
    let json = render_json(&diags);
    if let Some(path) = &args.json_out {
        std::fs::write(path, &json).map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    if args.json {
        let _ = write!(std::io::stdout(), "{json}");
    } else {
        for d in &diags {
            out(&render_human(d));
        }
        let unsuppressed = diags.iter().filter(|d| !d.suppressed).count();
        let suppressed = diags.len() - unsuppressed;
        out(&format!(
            "rocket-lint: {unsuppressed} unsuppressed finding(s), {suppressed} suppressed"
        ));
    }
    if diags.iter().any(|d| !d.suppressed) {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("rocket-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
