//! # Rocket — efficient and scalable all-pairs computations
//!
//! A Rust reproduction of *"Rocket: Efficient and Scalable All-Pairs
//! Computations on Heterogeneous Platforms"* (Heldens et al., SC 2020).
//!
//! All-pairs compute problems evaluate a user-defined function
//! `f(ℓ(i), ℓ(j))` for every pair `1 ≤ i < j ≤ n` of a data set, where `ℓ`
//! loads and pre-processes item `i`. Rocket executes such problems on
//! (heterogeneous, multi-GPU, multi-node) platforms with:
//!
//! * a three-level software cache (device → host → distributed) maximizing
//!   reuse of expensive loads,
//! * divide-and-conquer decomposition of the pair triangle with hierarchical
//!   random work-stealing for dynamic load balance,
//! * fully asynchronous processing: one thread class per resource so I/O,
//!   transfers, and kernels overlap.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the framework: [`core::Application`] trait, runtime, config |
//! | [`apps`] | forensics / bioinformatics / microscopy applications |
//! | [`cache`] | slot caches and the distributed cache directory |
//! | [`steal`] | quadrant decomposition + work-stealing scheduler |
//! | [`comm`] | cluster transports: local channels and TCP sockets |
//! | [`cluster`] | multi-process driver/worker backend, fault tolerant |
//! | [`gpu`] | virtual GPU device model |
//! | [`storage`] | object storage substrate |
//! | [`sim`] | discrete-event cluster simulator + performance model |
//! | [`trace`] | task tracing, timelines, throughput series |
//! | [`stats`] | deterministic RNG, distributions, summaries |
//!
//! ## Quickstart
//!
//! Execution is driven by the unified `Scenario`/`Backend` API: a
//! [`core::Scenario`] declaratively describes workload, cluster topology,
//! and runtime knobs; any [`core::Backend`] (the threaded runtime via
//! [`core::ThreadedBackend`], the simulator via [`sim::SimBackend`]) runs
//! it into one [`core::RunReport`], and [`core::Replications`] fans a
//! scenario out over N seeds with confidence intervals. Parameter sweeps
//! are first-class: a [`Sweep`] expands a base scenario over named
//! [`Axis`] values into a validated grid and a [`Study`] drives it
//! through any backend into a structured [`StudyReport`] (one record per
//! cell, tagged with its coordinates). See `examples/quickstart.rs` and
//! `examples/cluster_scaling.rs` for complete runnable programs; the
//! short version:
//!
//! ```
//! use rocket::core::{Backend, NodeSpec, Scenario};
//! use rocket::sim::SimBackend;
//! // One node × one GPU, 16 device slots, 64 host slots, 32-item toy set.
//! let scenario = Scenario::builder()
//!     .items(32)
//!     .node(NodeSpec::uniform(1, 16, 64))
//!     .job_limit(32)
//!     .build();
//! assert_eq!(scenario.total_gpus(), 1);
//! let report = SimBackend::new().run(&scenario).unwrap();
//! assert_eq!(report.pairs, 32 * 31 / 2);
//!
//! // The same scenario swept over a node-count axis, one report per cell:
//! use rocket::{Axis, Study, Sweep};
//! let sweep = Sweep::over(scenario)
//!     .axis(Axis::nodes([1, 2, 4]))
//!     .try_build()
//!     .unwrap();
//! let study = Study::new("scaling").run(&SimBackend::new(), &sweep).unwrap();
//! assert_eq!(study.cells.len(), 3);
//! ```

// The sweep/study driver types at the crate root: parameter grids are the
// primary way experiments are expressed (see `core::Sweep`/`core::Study`).
pub use rocket_core::{Axis, AxisValue, CellReport, ReplicationPolicy, Study, StudyReport, Sweep};

pub use rocket_apps as apps;
pub use rocket_cache as cache;
pub use rocket_cluster as cluster;
pub use rocket_comm as comm;
pub use rocket_core as core;
pub use rocket_gpu as gpu;
pub use rocket_sim as sim;
pub use rocket_stats as stats;
pub use rocket_steal as steal;
pub use rocket_storage as storage;
pub use rocket_trace as trace;
